#include "analysis/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace protest {

std::string JsonWriter::quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (!first_in_scope_) out_ += ',';
    newline();
  }
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('o');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  if (!first_in_scope_) newline();
  out_ += '}';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('a');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  if (!first_in_scope_) newline();
  out_ += ']';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!first_in_scope_) out_ += ',';
  newline();
  first_in_scope_ = false;
  out_ += quote(k);
  out_ += indent_ > 0 ? ": " : ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  char buf[32];
  if (v == std::trunc(v) && std::abs(v) < 1e15) {
    // Integral values print as integers, exactly matching write_uint /
    // write_int output: parsing a writer-produced document (where the
    // parser stores every number as double) and re-writing it must
    // reproduce the original bytes.
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    // Shortest representation that round-trips: try increasing precision.
    for (int prec = 1; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
  }
  before_value();
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::write_uint(unsigned long long v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", v);
  before_value();
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::write_int(long long v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", v);
  before_value();
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += quote(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

// --- reader -----------------------------------------------------------------

JsonParseError::JsonParseError(const std::string& message, std::size_t offset)
    : std::runtime_error(message + " at offset " + std::to_string(offset)),
      offset_(offset) {}

namespace {

const char* type_name(const JsonValue& v) {
  if (v.is_null()) return "null";
  if (v.is_bool()) return "bool";
  if (v.is_number()) return "number";
  if (v.is_string()) return "string";
  if (v.is_array()) return "array";
  return "object";
}

[[noreturn]] void type_error(const JsonValue& v, const char* wanted) {
  throw std::runtime_error(std::string("JSON value is ") + type_name(v) +
                           ", expected " + wanted);
}

/// Recursive-descent parser over the whole input.  Depth-capped so
/// `[[[[...` fails with JsonParseError instead of a stack overflow.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, const char* what) {
    if (!consume(c)) fail(std::string("expected ") + what);
  }

  void expect_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail("invalid literal");
    pos_ += word.size();
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't': expect_keyword("true"); return JsonValue(true);
      case 'f': expect_keyword("false"); return JsonValue(false);
      case 'n': expect_keyword("null"); return JsonValue(nullptr);
      default: return JsonValue(parse_number());
    }
  }

  JsonValue parse_object(int depth) {
    expect('{', "'{'");
    JsonValue::Object members;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(members));
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_ws();
      expect(':', "':'");
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}', "',' or '}'");
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[', "'['");
    JsonValue::Array elems;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(elems));
    for (;;) {
      elems.push_back(parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']', "',' or ']'");
      return JsonValue(std::move(elems));
    }
  }

  /// Exactly 4 hex digits after a \u.
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    pos_ += 4;
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!(consume('\\') && consume('u')))
              fail("unpaired surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    consume('-');
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("invalid number");
    if (text_[pos_] == '0') ++pos_;  // no leading zeros
    else while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("digit required after decimal point");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("digit required in exponent");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    // The slice is validated, so strtod cannot reject it; a local copy
    // guarantees NUL termination (string_view need not be terminated).
    const std::string slice(text_.substr(start, pos_ - start));
    return std::strtod(slice.c_str(), nullptr);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) type_error(*this, "bool");
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  if (!is_number()) type_error(*this, "number");
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) type_error(*this, "string");
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) type_error(*this, "array");
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) type_error(*this, "object");
  return std::get<Object>(v_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const Member& m : as_object())
    if (m.first == key) return &m.second;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v)
    throw std::runtime_error("missing JSON member '" + std::string(key) + "'");
  return *v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

void write_value(JsonWriter& w, const JsonValue& value) {
  if (value.is_null()) {
    w.null();
  } else if (value.is_bool()) {
    w.value(value.as_bool());
  } else if (value.is_number()) {
    w.value(value.as_number());
  } else if (value.is_string()) {
    w.value(value.as_string());
  } else if (value.is_array()) {
    w.begin_array();
    for (const JsonValue& e : value.as_array()) write_value(w, e);
    w.end_array();
  } else {
    w.begin_object();
    for (const JsonValue::Member& m : value.as_object()) {
      w.key(m.first);
      write_value(w, m.second);
    }
    w.end_object();
  }
}

std::string to_json(const JsonValue& value, int indent) {
  JsonWriter w(indent);
  write_value(w, value);
  return w.str();
}

}  // namespace protest
