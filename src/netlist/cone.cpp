#include "netlist/cone.hpp"

#include <algorithm>
#include <bit>
#include <queue>

#include "netlist/compiled.hpp"

namespace protest {

std::vector<NodeId> transitive_fanin(const Netlist& net,
                                     std::span<const NodeId> roots,
                                     unsigned max_depth) {
  ConeWorkspace ws(net);
  ws.compute(roots, max_depth);
  return ws.cone();
}

std::vector<NodeId> transitive_fanout(const Netlist& net, NodeId root) {
  std::vector<char> mark(net.size(), 0);
  std::vector<NodeId> out;
  std::queue<NodeId> q;
  mark[root] = 1;
  out.push_back(root);
  q.push(root);
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (NodeId s : net.fanout(n)) {
      if (mark[s]) continue;
      mark[s] = 1;
      out.push_back(s);
      q.push(s);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<NodeId>& InputFanoutCones::of(std::size_t input_index) {
  if (cones_.empty()) cones_.resize(net_.inputs().size());
  std::vector<NodeId>& cone = cones_[input_index];
  // A cone always contains its root, so empty doubles as "not computed".
  if (cone.empty()) cone = transitive_fanout(net_, net_.inputs()[input_index]);
  return cone;
}

ConeWorkspace::ConeWorkspace(const Netlist& net)
    : net_(net), mask_(net.size(), 0), epoch_of_(net.size(), 0) {}

void ConeWorkspace::compute(std::span<const NodeId> roots, unsigned max_depth) {
  ++epoch_;
  cone_.clear();
  roots_.assign(roots.begin(), roots.end());
  const std::size_t nroots = std::min<std::size_t>(roots.size(), 32);

  // One BFS per root; BFS order reaches every node at its minimal depth
  // first, so the depth bound is honored per root.
  std::vector<std::pair<NodeId, unsigned>> queue;
  for (std::size_t i = 0; i < nroots; ++i) {
    const std::uint32_t bit = std::uint32_t{1} << i;
    queue.clear();
    std::size_t head = 0;
    auto visit = [&](NodeId n, unsigned d) {
      if (epoch_of_[n] != epoch_) {
        epoch_of_[n] = epoch_;
        mask_[n] = 0;
        cone_.push_back(n);
      }
      if (mask_[n] & bit) return false;
      mask_[n] |= bit;
      queue.emplace_back(n, d);
      return true;
    };
    visit(roots[i], 0);
    const CompiledNetlist& cn = net_.compiled();
    while (head < queue.size()) {
      const auto [n, d] = queue[head++];
      if (max_depth != 0 && d >= max_depth) continue;
      for (NodeId f : cn.fanin(n)) visit(f, d + 1);
    }
  }
  std::sort(cone_.begin(), cone_.end());
}

std::vector<NodeId> ConeWorkspace::conditioning_points(NodeId consumer) const {
  std::vector<NodeId> result;
  for (NodeId s : cone_) {
    const auto branches = net_.fanout(s);
    if (branches.size() < 2) continue;
    std::uint32_t consumer_pin_mask = 0;
    if (consumer != kNoNode) {
      const auto fanin = net_.compiled().fanin(consumer);
      for (std::size_t i = 0; i < std::min<std::size_t>(fanin.size(), 32); ++i)
        if (fanin[i] == s) consumer_pin_mask |= std::uint32_t{1} << i;
    }
    // Any two distinct branch instances on paths into the cone qualify —
    // same-root reconvergence included.
    int nonzero = 0;
    for (NodeId t : branches) {
      std::uint32_t m = reach_mask(t);
      if (consumer != kNoNode && t == consumer) m |= consumer_pin_mask;
      if (m != 0 && ++nonzero >= 2) break;
    }
    if (nonzero >= 2) result.push_back(s);
  }
  return result;
}

std::vector<NodeId> ConeWorkspace::joining_points(NodeId consumer) const {
  // Root bits for branches that are the consumer itself: branch via pin i
  // counts as "leads to root i".
  std::uint32_t consumer_pin_mask_for = 0;  // computed per stem below
  std::vector<NodeId> result;
  for (NodeId s : cone_) {
    const auto branches = net_.fanout(s);
    if (branches.size() < 2) continue;
    if (consumer != kNoNode) {
      consumer_pin_mask_for = 0;
      const auto fanin = net_.compiled().fanin(consumer);
      for (std::size_t i = 0; i < std::min<std::size_t>(fanin.size(), 32); ++i)
        if (fanin[i] == s) consumer_pin_mask_for |= std::uint32_t{1} << i;
    }
    // Collect branch masks; qualify if two distinct branch instances lead
    // to two different roots: m1 != 0, m2 != 0, popcount(m1|m2) >= 2.
    bool qualifies = false;
    std::uint32_t seen_any = 0;   // union of masks of earlier branches
    int nonzero_branches = 0;
    for (NodeId t : branches) {
      std::uint32_t m = reach_mask(t);
      if (consumer != kNoNode && t == consumer) m |= consumer_pin_mask_for;
      if (m == 0) continue;
      if (nonzero_branches >= 1 && std::popcount(seen_any | m) >= 2) {
        qualifies = true;
        break;
      }
      seen_any |= m;
      ++nonzero_branches;
    }
    if (qualifies) result.push_back(s);
  }
  return result;
}

std::vector<NodeId> joining_points(const Netlist& net,
                                   std::span<const NodeId> roots,
                                   unsigned max_depth, NodeId consumer) {
  ConeWorkspace ws(net);
  ws.compute(roots, max_depth);
  return ws.joining_points(consumer);
}

std::vector<NodeId> joining_points(const Netlist& net, NodeId a, NodeId b,
                                   unsigned max_depth) {
  if (a == b) {
    // Single-root mode: stems with two distinct branches both reaching a.
    ConeWorkspace ws(net);
    const NodeId roots[1] = {a};
    ws.compute(roots, max_depth);
    std::vector<NodeId> result;
    for (NodeId s : ws.cone()) {
      const auto branches = net.fanout(s);
      if (branches.size() < 2) continue;
      int reaching = 0;
      for (NodeId t : branches)
        if (ws.reach_mask(t)) ++reaching;
      if (reaching >= 2) result.push_back(s);
    }
    return result;
  }
  const NodeId roots[2] = {a, b};
  return joining_points(net, std::span<const NodeId>(roots, 2), max_depth);
}

}  // namespace protest
