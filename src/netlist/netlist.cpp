#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/compiled.hpp"

namespace protest {

void Netlist::check_open() const {
  if (finalized_)
    throw std::logic_error("Netlist: structure is frozen after finalize()");
}

void Netlist::reserve(std::size_t num_nodes) {
  check_open();
  gates_.reserve(num_nodes);
}

NodeId Netlist::add_input(std::string name) {
  check_open();
  const NodeId id = static_cast<NodeId>(gates_.size());
  gates_.push_back(Gate{GateType::Input, {}, std::move(name)});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_gate(GateType type, std::vector<NodeId> fanin,
                         std::string name) {
  check_open();
  if (type == GateType::Input)
    throw std::invalid_argument("Netlist: use add_input for primary inputs");
  const bool is_const = type == GateType::Const0 || type == GateType::Const1;
  const bool is_unary = type == GateType::Buf || type == GateType::Not;
  if (is_const && !fanin.empty())
    throw std::invalid_argument("Netlist: constant gate takes no fanin");
  if (is_unary && fanin.size() != 1)
    throw std::invalid_argument("Netlist: unary gate takes exactly one fanin");
  if (is_logic_op(type) && fanin.empty())
    throw std::invalid_argument("Netlist: logic gate needs >= 1 fanin");
  const NodeId id = static_cast<NodeId>(gates_.size());
  for (NodeId f : fanin)
    if (f >= id)
      throw std::invalid_argument(
          "Netlist: fanin must reference an existing node (topological "
          "construction)");
  gates_.push_back(Gate{type, std::move(fanin), std::move(name)});
  return id;
}

void Netlist::mark_output(NodeId n) {
  check_open();
  if (n >= gates_.size())
    throw std::invalid_argument("Netlist: mark_output of unknown node");
  if (output_flag_.size() < gates_.size()) output_flag_.resize(gates_.size(), 0);
  if (output_flag_[n])
    throw std::invalid_argument("Netlist: node marked as output twice");
  output_flag_[n] = 1;
  outputs_.push_back(n);
}

void Netlist::finalize() {
  check_open();
  const std::size_t n = gates_.size();
  if (outputs_.empty())
    throw std::logic_error("Netlist: no primary outputs marked");
  output_flag_.resize(n, 0);

  levels_.assign(n, 0);
  depth_ = 0;
  // Fanout CSR: count branch degrees, prefix-sum, then fill.
  fanout_offset_.assign(n + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    const Gate& g = gates_[id];
    unsigned lvl = 0;
    for (NodeId f : g.fanin) {
      ++fanout_offset_[f + 1];
      lvl = std::max(lvl, levels_[f] + 1);
    }
    levels_[id] = g.fanin.empty() ? 0 : lvl;
    depth_ = std::max(depth_, levels_[id]);
  }
  for (std::size_t i = 1; i <= n; ++i) fanout_offset_[i] += fanout_offset_[i - 1];
  fanout_edges_.resize(fanout_offset_[n]);
  {
    std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                      fanout_offset_.end() - 1);
    for (NodeId id = 0; id < n; ++id)
      for (NodeId f : gates_[id].fanin) fanout_edges_[cursor[f]++] = id;
  }

  stems_.clear();
  for (NodeId id = 0; id < n; ++id) {
    // A primary-output node with extra fanout also branches: the output pin
    // itself counts as one branch.
    const std::size_t branches = fanout_offset_[id + 1] - fanout_offset_[id] +
                                 (output_flag_[id] ? 1 : 0);
    if (branches >= 2) stems_.push_back(id);
  }

  by_name_.clear();
  for (NodeId id = 0; id < n; ++id) {
    const std::string& nm = gates_[id].name;
    if (nm.empty()) continue;
    if (!by_name_.emplace(nm, id).second)
      throw std::logic_error("Netlist: duplicate net name '" + nm + "'");
  }

  compiled_ = std::make_shared<const CompiledNetlist>(*this);
  finalized_ = true;
}

const CompiledNetlist& Netlist::compiled() const {
  if (!compiled_)
    throw std::logic_error("Netlist: compiled() requires finalize()");
  return *compiled_;
}

NodeId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

std::string Netlist::name_of(NodeId n) const {
  const std::string& nm = gates_[n].name;
  if (!nm.empty()) return nm;
  return "n" + std::to_string(n);
}

}  // namespace protest
