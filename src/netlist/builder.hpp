// Convenience layer for constructing netlists programmatically: name-based
// gate creation plus bus (vector-of-nets) helpers used by the circuit
// generators in src/circuits.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

/// An ordered group of nets, LSB first by convention.
using Bus = std::vector<NodeId>;

/// How XOR/XNOR requests are realized.  The paper's circuits come from a
/// TTL/SSI library without XOR primitives; `NandMacro` builds the classic
/// 4-NAND exclusive-or (and its inverted form), which also makes the
/// paper's sect. 3 gate-transfer formula exact on every gate.
enum class XorStyle { Primitive, NandMacro };

class NetlistBuilder {
 public:
  NetlistBuilder() = default;
  explicit NetlistBuilder(XorStyle xor_style) : xor_style_(xor_style) {}

  /// Adds one named primary input.
  NodeId input(const std::string& name);

  /// Adds a `width`-bit input bus named `name`0 .. `name`<width-1>, LSB first.
  Bus input_bus(const std::string& name, std::size_t width);

  NodeId constant(bool value);

  NodeId gate(GateType t, std::vector<NodeId> fanin, std::string name = {});

  // Shorthands (unnamed nets).
  NodeId buf(NodeId a) { return gate(GateType::Buf, {a}); }
  NodeId inv(NodeId a) { return gate(GateType::Not, {a}); }
  NodeId and2(NodeId a, NodeId b) { return gate(GateType::And, {a, b}); }
  NodeId nand2(NodeId a, NodeId b) { return gate(GateType::Nand, {a, b}); }
  NodeId or2(NodeId a, NodeId b) { return gate(GateType::Or, {a, b}); }
  NodeId nor2(NodeId a, NodeId b) { return gate(GateType::Nor, {a, b}); }
  NodeId xor2(NodeId a, NodeId b) { return gate(GateType::Xor, {a, b}); }
  NodeId xnor2(NodeId a, NodeId b) { return gate(GateType::Xnor, {a, b}); }
  NodeId andn(std::vector<NodeId> in) { return gate(GateType::And, std::move(in)); }
  NodeId orn(std::vector<NodeId> in) { return gate(GateType::Or, std::move(in)); }
  NodeId xorn(std::vector<NodeId> in) { return gate(GateType::Xor, std::move(in)); }

  /// 2:1 multiplexer: sel ? hi : lo.
  NodeId mux(NodeId sel, NodeId lo, NodeId hi);

  void output(NodeId n) { net_.mark_output(n); }
  void output(NodeId n, const std::string& name);
  void output_bus(const Bus& b, const std::string& name);

  /// Finalizes and returns the netlist.  The builder is spent afterwards.
  Netlist build();

  /// Access to the netlist under construction (e.g. for find()).
  const Netlist& peek() const { return net_; }

  XorStyle xor_style() const { return xor_style_; }

 private:
  NodeId xor2_nand(NodeId a, NodeId b);

  Netlist net_;
  XorStyle xor_style_ = XorStyle::Primitive;
};

}  // namespace protest
