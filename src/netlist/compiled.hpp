// Columnar (structure-of-arrays) view of a finalized Netlist: the
// simulation core every pattern-throughput path rides.
//
// The Gate-struct representation is built for construction ergonomics —
// one heap-allocated fanin vector and one name string per node.  Walking
// it per 64-pattern block is pointer-chasing: every gate evaluation
// dereferences a separate vector, and the per-gate data (type, arity,
// fanin) is scattered across the heap.  CompiledNetlist flattens all of
// it once, at finalize() time:
//
//   types()          one byte per node, indexed by NodeId
//   fanin CSR        fanin_offset()/fanin_edges(): every gate's fanin ids
//                    contiguous in one flat array
//   order()          all evaluatable gates (everything except primary
//                    inputs and constants) sorted by (level, type, id) —
//                    a valid topological order, since every fanin of a
//                    level-L gate has level < L
//   level_range()    per-level slices of order(): the wavefronts of the
//                    levelized schedule (level 0 holds inputs/constants
//                    only and is always empty in order())
//   runs()           maximal same-type segments of order() inside one
//                    level: the unit of type-dispatched evaluation —
//                    WordSimulator hoists the gate-type switch out of the
//                    per-gate path and runs one tight kernel per run
//
// The view is immutable and shared: Netlist::finalize() builds it once
// and copies of the Netlist alias it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/gate.hpp"

namespace protest {

class Netlist;

class CompiledNetlist {
 public:
  /// Maximal run of same-type gates within one level of order().
  struct Run {
    GateType type;
    std::uint32_t begin;  ///< first index into order()
    std::uint32_t end;    ///< one past the last index into order()
  };

  /// Builds the columnar view.  Called by Netlist::finalize() once the
  /// levels and fanouts are in place; the netlist structure must be
  /// complete (it need not be flagged finalized yet).
  explicit CompiledNetlist(const Netlist& net);

  std::size_t num_nodes() const { return types_.size(); }
  std::size_t num_inputs() const { return num_inputs_; }
  /// Gates in order(): every node that needs evaluation per pass.
  std::size_t num_eval_gates() const { return order_.size(); }
  unsigned depth() const { return depth_; }
  std::size_t max_fanin() const { return max_fanin_; }

  GateType type(NodeId n) const { return types_[n]; }
  std::span<const GateType> types() const { return types_; }

  /// Fanin ids of node n (empty for inputs/constants), CSR slice.
  std::span<const NodeId> fanin(NodeId n) const {
    return {fanin_edges_.data() + fanin_offset_[n],
            fanin_offset_[n + 1] - fanin_offset_[n]};
  }
  std::span<const std::uint32_t> fanin_offsets() const { return fanin_offset_; }
  std::span<const NodeId> fanin_edges() const { return fanin_edges_; }

  /// Levelized evaluation order (see header comment).
  std::span<const NodeId> order() const { return order_; }

  /// Slice of order() holding the gates of logic level `level` (1-based;
  /// level 0 is always empty — inputs and constants are not evaluated).
  std::span<const NodeId> level_range(unsigned level) const {
    return {order_.data() + level_begin_[level],
            level_begin_[level + 1] - level_begin_[level]};
  }

  std::span<const Run> runs() const { return runs_; }

  /// Constant nodes and their values — evaluated once, not per pass.
  std::span<const NodeId> constants() const { return constants_; }

 private:
  std::size_t num_inputs_ = 0;
  unsigned depth_ = 0;
  std::size_t max_fanin_ = 0;
  std::vector<GateType> types_;
  std::vector<std::uint32_t> fanin_offset_;  ///< [num_nodes + 1]
  std::vector<NodeId> fanin_edges_;
  std::vector<NodeId> order_;
  std::vector<std::uint32_t> level_begin_;   ///< [depth + 2]
  std::vector<Run> runs_;
  std::vector<NodeId> constants_;
};

}  // namespace protest
