#include "netlist/dsl.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace protest {
namespace {

// ---------------------------------------------------------------- lexer --
struct Token {
  enum Kind { Ident, LParen, RParen, LBrace, RBrace, Comma, Arrow, Equals, End };
  Kind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Token next() {
    skip_space_and_comments();
    if (pos_ >= src_.size()) return {Token::End, "", line_};
    const char c = src_[pos_];
    switch (c) {
      case '(': ++pos_; return {Token::LParen, "(", line_};
      case ')': ++pos_; return {Token::RParen, ")", line_};
      case '{': ++pos_; return {Token::LBrace, "{", line_};
      case '}': ++pos_; return {Token::RBrace, "}", line_};
      case ',': ++pos_; return {Token::Comma, ",", line_};
      case '=': ++pos_; return {Token::Equals, "=", line_};
      case '-':
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
          pos_ += 2;
          return {Token::Arrow, "->", line_};
        }
        break;
      default: break;
    }
    if (is_ident_char(c)) {
      std::size_t start = pos_;
      while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
      return {Token::Ident, src_.substr(start, pos_ - start), line_};
    }
    throw DslParseError("dsl:" + std::to_string(line_) +
                        ": unexpected character '" + std::string(1, c) + "'");
  }

 private:
  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
  }
  void skip_space_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }
  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// --------------------------------------------------------------- parser --
struct Statement {
  std::vector<std::string> lhs;   ///< one or more result nets
  std::string op;                 ///< primitive or module name
  std::vector<std::string> args;
  int line;
};

struct Module {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Statement> body;
  int line;
};

struct Program {
  std::unordered_map<std::string, Module> modules;
  std::string top;
  int top_line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw DslParseError("dsl:" + std::to_string(line) + ": " + msg);
}

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) { advance(); }

  Program parse() {
    Program prog;
    while (cur_.kind != Token::End) {
      if (cur_.kind != Token::Ident) fail(cur_.line, "expected 'module' or 'circuit'");
      if (cur_.text == "module") {
        Module m = parse_module();
        const int line = m.line;
        if (!prog.modules.emplace(m.name, std::move(m)).second)
          fail(line, "module defined twice");
      } else if (cur_.text == "circuit") {
        advance();
        if (cur_.kind != Token::Ident) fail(cur_.line, "expected circuit name");
        if (!prog.top.empty()) fail(cur_.line, "multiple 'circuit' directives");
        prog.top = cur_.text;
        prog.top_line = cur_.line;
        advance();
      } else {
        fail(cur_.line, "expected 'module' or 'circuit', got '" + cur_.text + "'");
      }
    }
    if (prog.top.empty())
      throw DslParseError("dsl: missing 'circuit <top>' directive");
    if (!prog.modules.contains(prog.top))
      fail(prog.top_line, "unknown top module '" + prog.top + "'");
    return prog;
  }

 private:
  void advance() { cur_ = lex_.next(); }

  void expect(Token::Kind k, const char* what) {
    if (cur_.kind != k) fail(cur_.line, std::string("expected ") + what);
    advance();
  }

  std::string expect_ident(const char* what) {
    if (cur_.kind != Token::Ident)
      fail(cur_.line, std::string("expected ") + what);
    std::string t = cur_.text;
    advance();
    return t;
  }

  std::vector<std::string> ident_list(Token::Kind terminator) {
    std::vector<std::string> out;
    if (cur_.kind == terminator) return out;
    out.push_back(expect_ident("net name"));
    while (cur_.kind == Token::Comma) {
      advance();
      out.push_back(expect_ident("net name"));
    }
    return out;
  }

  Module parse_module() {
    Module m;
    m.line = cur_.line;
    advance();  // 'module'
    m.name = expect_ident("module name");
    expect(Token::LParen, "'('");
    m.inputs = ident_list(Token::Arrow);
    expect(Token::Arrow, "'->'");
    m.outputs = ident_list(Token::RParen);
    expect(Token::RParen, "')'");
    expect(Token::LBrace, "'{'");
    if (m.outputs.empty()) fail(m.line, "module needs at least one output");
    while (cur_.kind != Token::RBrace) {
      m.body.push_back(parse_statement());
    }
    advance();  // '}'
    return m;
  }

  Statement parse_statement() {
    Statement s;
    s.line = cur_.line;
    if (cur_.kind == Token::LParen) {
      advance();
      s.lhs = ident_list(Token::RParen);
      expect(Token::RParen, "')'");
    } else {
      s.lhs.push_back(expect_ident("result net"));
    }
    if (s.lhs.empty()) fail(s.line, "statement needs a result net");
    expect(Token::Equals, "'='");
    s.op = expect_ident("gate or module name");
    expect(Token::LParen, "'('");
    s.args = ident_list(Token::RParen);
    expect(Token::RParen, "')'");
    return s;
  }

  Lexer lex_;
  Token cur_{Token::End, "", 0};
};

// ----------------------------------------------------------- elaborator --
std::optional<GateType> primitive_of(std::string op) {
  std::transform(op.begin(), op.end(), op.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (op == "AND") return GateType::And;
  if (op == "NAND") return GateType::Nand;
  if (op == "OR") return GateType::Or;
  if (op == "NOR") return GateType::Nor;
  if (op == "XOR") return GateType::Xor;
  if (op == "XNOR") return GateType::Xnor;
  if (op == "NOT" || op == "INV") return GateType::Not;
  if (op == "BUF" || op == "BUFF") return GateType::Buf;
  if (op == "CONST0") return GateType::Const0;
  if (op == "CONST1") return GateType::Const1;
  return std::nullopt;
}

class Elaborator {
 public:
  Elaborator(const Program& prog) : prog_(prog) {}

  Netlist run() {
    const Module& top = prog_.modules.at(prog_.top);
    std::unordered_map<std::string, NodeId> env;
    for (const std::string& in : top.inputs) {
      if (env.contains(in)) fail(top.line, "duplicate input '" + in + "'");
      env.emplace(in, net_.add_input(in));
    }
    elaborate_body(top, env, /*keep_names=*/true);
    for (const std::string& out : top.outputs) {
      auto it = env.find(out);
      if (it == env.end())
        fail(top.line, "top output '" + out + "' never driven");
      net_.mark_output(it->second);
    }
    net_.finalize();
    return std::move(net_);
  }

 private:
  /// Elaborates a module body in the given environment (formals already
  /// bound).  Returns nothing; env gains every local net.
  void elaborate_body(const Module& m,
                      std::unordered_map<std::string, NodeId>& env,
                      bool keep_names) {
    for (const Statement& s : m.body) {
      std::vector<NodeId> args;
      args.reserve(s.args.size());
      for (const std::string& a : s.args) {
        auto it = env.find(a);
        if (it == env.end())
          fail(s.line, "net '" + a + "' used before definition");
        args.push_back(it->second);
      }
      std::vector<NodeId> results;
      if (const auto prim = primitive_of(s.op)) {
        if (s.lhs.size() != 1)
          fail(s.line, "a primitive gate produces exactly one net");
        try {
          results.push_back(net_.add_gate(
              *prim, std::move(args),
              keep_names ? s.lhs[0] : std::string{}));
        } catch (const std::invalid_argument& e) {
          fail(s.line, e.what());
        }
      } else {
        results = instantiate(s, args);
      }
      for (std::size_t i = 0; i < s.lhs.size(); ++i) {
        if (!env.emplace(s.lhs[i], results[i]).second)
          fail(s.line, "net '" + s.lhs[i] + "' defined twice");
      }
    }
  }

  std::vector<NodeId> instantiate(const Statement& s,
                                  const std::vector<NodeId>& actuals) {
    auto it = prog_.modules.find(s.op);
    if (it == prog_.modules.end())
      fail(s.line, "unknown gate or module '" + s.op + "'");
    const Module& callee = it->second;
    if (actuals.size() != callee.inputs.size())
      fail(s.line, "module '" + s.op + "' expects " +
                       std::to_string(callee.inputs.size()) + " inputs, got " +
                       std::to_string(actuals.size()));
    if (s.lhs.size() != callee.outputs.size())
      fail(s.line, "module '" + s.op + "' produces " +
                       std::to_string(callee.outputs.size()) +
                       " outputs, bound to " + std::to_string(s.lhs.size()));
    if (std::find(stack_.begin(), stack_.end(), callee.name) != stack_.end())
      fail(s.line, "recursive instantiation of '" + callee.name + "'");
    stack_.push_back(callee.name);

    std::unordered_map<std::string, NodeId> env;
    for (std::size_t i = 0; i < actuals.size(); ++i)
      env.emplace(callee.inputs[i], actuals[i]);
    elaborate_body(callee, env, /*keep_names=*/false);
    std::vector<NodeId> results;
    for (const std::string& out : callee.outputs) {
      auto oit = env.find(out);
      if (oit == env.end())
        fail(callee.line, "module output '" + out + "' never driven");
      results.push_back(oit->second);
    }
    stack_.pop_back();
    return results;
  }

  const Program& prog_;
  Netlist net_;
  std::vector<std::string> stack_;  ///< instantiation path (cycle check)
};

}  // namespace

Netlist elaborate_dsl(const std::string& text) {
  Parser parser(text);
  const Program prog = parser.parse();
  return Elaborator(prog).run();
}

Netlist elaborate_dsl_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw DslParseError("dsl: cannot open file '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return elaborate_dsl(ss.str());
}

}  // namespace protest
