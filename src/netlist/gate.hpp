// Gate types of the combinational netlist model and their three
// interpretations: Boolean evaluation, 64-way bit-parallel evaluation, and
// the arithmetic (probability) transfer function used throughout PROTEST.
//
// The paper (sect. 2) develops the theory for inverters and 2-input ANDs
// only "to simplify the notation"; PROTEST itself "accepts combinational
// circuits with arbitrary boolean functions as basic components".  We
// support the standard gate library with arbitrary fan-in.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace protest {

/// Index of a node (primary input or gate output) in a Netlist.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = 0xFFFF'FFFFu;

enum class GateType : std::uint8_t {
  Input,   ///< primary input (no fanin)
  Const0,  ///< constant logical 0
  Const1,  ///< constant logical 1
  Buf,     ///< identity, 1 fanin
  Not,     ///< inverter, 1 fanin
  And,     ///< n-ary AND, n >= 1
  Nand,    ///< n-ary NAND
  Or,      ///< n-ary OR
  Nor,     ///< n-ary NOR
  Xor,     ///< n-ary XOR (odd parity)
  Xnor,    ///< n-ary XNOR (even parity)
};

/// Human-readable / .bench-compatible name of a gate type.
std::string to_string(GateType t);

/// True for And/Nand/Or/Nor/Xor/Xnor (the types that take n >= 1 inputs).
bool is_logic_op(GateType t);

/// True if the gate output inverts its "core" function (Nand, Nor, Xnor, Not).
bool is_inverting(GateType t);

/// Boolean evaluation of a gate over its input values.
bool eval_gate(GateType t, std::span<const bool> in);

/// 64 patterns at once, one per bit.
std::uint64_t eval_gate_word(GateType t, std::span<const std::uint64_t> in);

/// Arithmetic transfer function under the independence assumption: the
/// probability that the gate output is 1 given independent input
/// probabilities.  This is the unique multilinear extension of the Boolean
/// function (the mapping !x -> 1-x, x&y -> x*y of sect. 3).
double eval_gate_prob(GateType t, std::span<const double> in);

/// Controlling value of the gate, if it has one (AND/NAND -> 0,
/// OR/NOR -> 1).  Returns -1 for gates without a controlling value.
int controlling_value(GateType t);

/// Value at the output when a controlling value is applied at an input.
/// Only meaningful when controlling_value(t) >= 0.
bool controlled_output(GateType t);

}  // namespace protest
