#include "netlist/builder.hpp"

namespace protest {

NodeId NetlistBuilder::input(const std::string& name) {
  return net_.add_input(name);
}

Bus NetlistBuilder::input_bus(const std::string& name, std::size_t width) {
  Bus b;
  b.reserve(width);
  for (std::size_t i = 0; i < width; ++i)
    b.push_back(net_.add_input(name + std::to_string(i)));
  return b;
}

NodeId NetlistBuilder::constant(bool value) {
  return net_.add_gate(value ? GateType::Const1 : GateType::Const0, {});
}

NodeId NetlistBuilder::xor2_nand(NodeId a, NodeId b) {
  // Classic 4-NAND exclusive-or.
  const NodeId t = net_.add_gate(GateType::Nand, {a, b}, {});
  const NodeId l = net_.add_gate(GateType::Nand, {a, t}, {});
  const NodeId r = net_.add_gate(GateType::Nand, {t, b}, {});
  return net_.add_gate(GateType::Nand, {l, r}, {});
}

NodeId NetlistBuilder::gate(GateType t, std::vector<NodeId> fanin,
                            std::string name) {
  if (xor_style_ == XorStyle::NandMacro &&
      (t == GateType::Xor || t == GateType::Xnor) && fanin.size() >= 2) {
    NodeId acc = fanin[0];
    for (std::size_t i = 1; i < fanin.size(); ++i)
      acc = xor2_nand(acc, fanin[i]);
    if (t == GateType::Xnor) acc = net_.add_gate(GateType::Not, {acc}, {});
    if (!name.empty()) acc = net_.add_gate(GateType::Buf, {acc}, std::move(name));
    return acc;
  }
  return net_.add_gate(t, std::move(fanin), std::move(name));
}

NodeId NetlistBuilder::mux(NodeId sel, NodeId lo, NodeId hi) {
  const NodeId nsel = inv(sel);
  const NodeId a = and2(nsel, lo);
  const NodeId b = and2(sel, hi);
  return or2(a, b);
}

void NetlistBuilder::output(NodeId n, const std::string& name) {
  // A named output is realized as a named buffer so that the output pin
  // carries the requested net name even if n is shared logic.
  const NodeId o = net_.add_gate(GateType::Buf, {n}, name);
  net_.mark_output(o);
}

void NetlistBuilder::output_bus(const Bus& b, const std::string& name) {
  for (std::size_t i = 0; i < b.size(); ++i)
    output(b[i], name + std::to_string(i));
}

Netlist NetlistBuilder::build() {
  net_.finalize();
  return std::move(net_);
}

}  // namespace protest
