// Structural cone utilities: transitive fanin/fanout and the joining-point
// sets V(a,b) of the paper (fig. 2) — the reconvergence stems that make
// exact signal-probability computation hard and that PROTEST conditions on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

/// Nodes in the transitive fanin of `roots` (including the roots), limited
/// to `max_depth` backward steps (max_depth == 0 means unbounded).  Sorted
/// ascending (= topological order).
std::vector<NodeId> transitive_fanin(const Netlist& net,
                                     std::span<const NodeId> roots,
                                     unsigned max_depth = 0);

/// Nodes in the transitive fanout of `root` (including root), ascending.
std::vector<NodeId> transitive_fanout(const Netlist& net, NodeId root);

/// Lazy per-primary-input cache of transitive fanout cones — the work
/// lists of incremental single-coordinate re-evaluation.  Each cone is
/// computed on first request and kept for the cache's lifetime.
class InputFanoutCones {
 public:
  explicit InputFanoutCones(const Netlist& net) : net_(net) {}

  /// Fanout cone of primary input `input_index` (including the input
  /// node), ascending (= topological).
  const std::vector<NodeId>& of(std::size_t input_index);

 private:
  const Netlist& net_;
  std::vector<std::vector<NodeId>> cones_;
};

/// Reusable scratch state for repeated bounded-cone queries; avoids
/// re-allocating netlist-sized arrays per gate (the estimator visits every
/// gate of circuits with 10^4+ nodes).
///
/// compute(roots, d) performs one bounded backward BFS per root (at most 32
/// roots) and records, per reached node, the bitmask of roots whose
/// depth-bounded TFI contains it.
class ConeWorkspace {
 public:
  explicit ConeWorkspace(const Netlist& net);

  void compute(std::span<const NodeId> roots, unsigned max_depth);

  /// Union of the bounded TFIs (including roots), ascending.
  const std::vector<NodeId>& cone() const { return cone_; }

  /// Bitmask of roots whose bounded TFI contains n (0 outside the cone).
  std::uint32_t reach_mask(NodeId n) const {
    return epoch_of_[n] == epoch_ ? mask_[n] : 0;
  }

  /// Joining points for the last compute(): stems with two distinct fanout
  /// branches leading to two different roots.  When `consumer` is given
  /// (the gate whose fanins are the roots), a branch that *is* the consumer
  /// counts as leading to every root wired to the matching pins — this
  /// catches direct reconvergence such as AND(a, NOT(a)).  Ascending order.
  std::vector<NodeId> joining_points(NodeId consumer = kNoNode) const;

  /// Superset of joining_points(): additionally includes stems whose
  /// branches reconverge on a *single* root (V(a,a) inside one fanin cone).
  /// The PROTEST estimator conditions on these too, because its conditional
  /// probabilities P(a_i | A_v) are obtained by independence propagation
  /// inside the cone — pinning intra-cone stems removes that error source.
  std::vector<NodeId> conditioning_points(NodeId consumer = kNoNode) const;

 private:
  const Netlist& net_;
  std::vector<std::uint32_t> mask_;
  std::vector<std::uint32_t> epoch_of_;
  std::vector<NodeId> cone_;
  std::vector<NodeId> roots_;
  std::uint32_t epoch_ = 0;
};

/// The joining points V(a,b): nodes k with at least two immediate
/// successors, one on a path to `a` and another (distinct branch) on a path
/// to `b`.  Paths are limited to `max_depth` backward steps when
/// max_depth > 0 (the MAXLIST parameter of the paper).  With a == b, the
/// stems whose branches reconverge on a.  Ascending order.
std::vector<NodeId> joining_points(const Netlist& net, NodeId a, NodeId b,
                                   unsigned max_depth = 0);

/// n-ary generalisation over the fanins of one gate; pass the gate itself
/// as `consumer` to include direct-pin reconvergence.
std::vector<NodeId> joining_points(const Netlist& net,
                                   std::span<const NodeId> roots,
                                   unsigned max_depth = 0,
                                   NodeId consumer = kNoNode);

}  // namespace protest
