// A small hierarchical structure-description language — the counterpart of
// the language the original PROTEST compiled (sect. 7: "they compile a
// structure description language for circuits").  Unlike flat .bench it
// supports module definitions and instantiation:
//
//   # gate-level half adder
//   module half_adder(a, b -> s, c) {
//     s = XOR(a, b)
//     c = AND(a, b)
//   }
//   module top(x0, x1, cin -> sum, cout) {
//     (s1, c1) = half_adder(x0, x1)
//     (sum, c2) = half_adder(s1, cin)
//     cout = OR(c1, c2)
//   }
//   circuit top
//
// Primitive operators: AND OR NAND NOR XOR XNOR NOT BUF BUFF CONST0 CONST1.
// Nets must be defined before use inside a module body; instantiation is
// flattened (no hierarchy survives into the Netlist).
#pragma once

#include <stdexcept>
#include <string>

#include "netlist/netlist.hpp"

namespace protest {

class DslParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses and elaborates a DSL description into a flat finalized netlist.
/// Top-level nets keep their names; instance-local nets are anonymous.
Netlist elaborate_dsl(const std::string& text);
Netlist elaborate_dsl_file(const std::string& path);

}  // namespace protest
