#include "netlist/gate.hpp"

#include <stdexcept>

namespace protest {

std::string to_string(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
  }
  return "?";
}

bool is_logic_op(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

bool is_inverting(GateType t) {
  return t == GateType::Not || t == GateType::Nand || t == GateType::Nor ||
         t == GateType::Xnor;
}

bool eval_gate(GateType t, std::span<const bool> in) {
  switch (t) {
    case GateType::Input:
      throw std::logic_error("eval_gate: primary input has no function");
    case GateType::Const0: return false;
    case GateType::Const1: return true;
    case GateType::Buf: return in[0];
    case GateType::Not: return !in[0];
    case GateType::And: {
      for (bool v : in)
        if (!v) return false;
      return true;
    }
    case GateType::Nand: {
      for (bool v : in)
        if (!v) return true;
      return false;
    }
    case GateType::Or: {
      for (bool v : in)
        if (v) return true;
      return false;
    }
    case GateType::Nor: {
      for (bool v : in)
        if (v) return false;
      return true;
    }
    case GateType::Xor: {
      bool acc = false;
      for (bool v : in) acc ^= v;
      return acc;
    }
    case GateType::Xnor: {
      bool acc = true;
      for (bool v : in) acc ^= v;
      return acc;
    }
  }
  throw std::logic_error("eval_gate: unknown gate type");
}

std::uint64_t eval_gate_word(GateType t, std::span<const std::uint64_t> in) {
  switch (t) {
    case GateType::Input:
      throw std::logic_error("eval_gate_word: primary input has no function");
    case GateType::Const0: return 0;
    case GateType::Const1: return ~std::uint64_t{0};
    case GateType::Buf: return in[0];
    case GateType::Not: return ~in[0];
    case GateType::And: {
      std::uint64_t acc = ~std::uint64_t{0};
      for (std::uint64_t v : in) acc &= v;
      return acc;
    }
    case GateType::Nand: {
      std::uint64_t acc = ~std::uint64_t{0};
      for (std::uint64_t v : in) acc &= v;
      return ~acc;
    }
    case GateType::Or: {
      std::uint64_t acc = 0;
      for (std::uint64_t v : in) acc |= v;
      return acc;
    }
    case GateType::Nor: {
      std::uint64_t acc = 0;
      for (std::uint64_t v : in) acc |= v;
      return ~acc;
    }
    case GateType::Xor: {
      std::uint64_t acc = 0;
      for (std::uint64_t v : in) acc ^= v;
      return acc;
    }
    case GateType::Xnor: {
      std::uint64_t acc = ~std::uint64_t{0};
      for (std::uint64_t v : in) acc ^= v;
      return acc;
    }
  }
  throw std::logic_error("eval_gate_word: unknown gate type");
}

double eval_gate_prob(GateType t, std::span<const double> in) {
  switch (t) {
    case GateType::Input:
      throw std::logic_error("eval_gate_prob: primary input has no function");
    case GateType::Const0: return 0.0;
    case GateType::Const1: return 1.0;
    case GateType::Buf: return in[0];
    case GateType::Not: return 1.0 - in[0];
    case GateType::And: {
      double acc = 1.0;
      for (double p : in) acc *= p;
      return acc;
    }
    case GateType::Nand: {
      double acc = 1.0;
      for (double p : in) acc *= p;
      return 1.0 - acc;
    }
    case GateType::Or: {
      double acc = 1.0;
      for (double p : in) acc *= 1.0 - p;
      return 1.0 - acc;
    }
    case GateType::Nor: {
      double acc = 1.0;
      for (double p : in) acc *= 1.0 - p;
      return acc;
    }
    case GateType::Xor: {
      // P(odd parity) folds pairwise: p (+) q = p + q - 2pq.
      double acc = 0.0;
      for (double p : in) acc = acc + p - 2.0 * acc * p;
      return acc;
    }
    case GateType::Xnor: {
      double acc = 0.0;
      for (double p : in) acc = acc + p - 2.0 * acc * p;
      return 1.0 - acc;
    }
  }
  throw std::logic_error("eval_gate_prob: unknown gate type");
}

int controlling_value(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
      return 0;
    case GateType::Or:
    case GateType::Nor:
      return 1;
    default:
      return -1;
  }
}

bool controlled_output(GateType t) {
  switch (t) {
    case GateType::And: return false;
    case GateType::Nand: return true;
    case GateType::Or: return true;
    case GateType::Nor: return false;
    default:
      throw std::logic_error("controlled_output: gate has no controlling value");
  }
}

}  // namespace protest
