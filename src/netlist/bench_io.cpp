#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace protest {
namespace {

// The parser is allocation-lean for 100k+-line files: the whole stream is
// slurped once and every net name is a string_view into that buffer —
// std::strings materialize only when nodes are created.  Definitions
// resolve in FILE ORDER (forward references via DFS), so node ids follow
// the textual order and write_bench(read_bench(write_bench(net))) is
// byte-stable.

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Case-insensitive equality against an UPPERCASE reference, no allocation.
bool ieq(std::string_view s, std::string_view upper_ref) {
  if (s.size() != upper_ref.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i)
    if (std::toupper(static_cast<unsigned char>(s[i])) != upper_ref[i])
      return false;
  return true;
}

std::optional<GateType> gate_type_from(std::string_view op) {
  if (ieq(op, "AND")) return GateType::And;
  if (ieq(op, "NAND")) return GateType::Nand;
  if (ieq(op, "OR")) return GateType::Or;
  if (ieq(op, "NOR")) return GateType::Nor;
  if (ieq(op, "XOR")) return GateType::Xor;
  if (ieq(op, "XNOR")) return GateType::Xnor;
  if (ieq(op, "NOT") || ieq(op, "INV")) return GateType::Not;
  if (ieq(op, "BUF") || ieq(op, "BUFF")) return GateType::Buf;
  if (ieq(op, "CONST0")) return GateType::Const0;
  if (ieq(op, "CONST1")) return GateType::Const1;
  return std::nullopt;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw BenchParseError("bench:" + std::to_string(line) + ": " + msg);
}

struct Def {
  std::string_view name;
  GateType type;
  std::uint32_t args_begin;  ///< slice of the shared args arena
  std::uint32_t args_end;
  int line;
};

Netlist read_bench_text(std::string_view text) {
  // Reserve from a first-pass line count: every definition occupies one
  // line, and almost every line is a definition.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')) + 1;

  std::vector<std::string_view> input_order;
  std::vector<std::string_view> output_order;
  std::unordered_set<std::string_view> output_seen;
  std::vector<Def> defs;
  std::vector<std::string_view> args_arena;
  std::unordered_map<std::string_view, std::uint32_t> def_index;
  std::unordered_map<std::string_view, NodeId> ids;
  defs.reserve(lines);
  args_arena.reserve(3 * lines);
  def_index.reserve(lines);
  ids.reserve(lines);

  constexpr NodeId kInputPending = kNoNode - 1;

  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const auto lp = line.find('(');
      const auto rp = line.rfind(')');
      if (lp == std::string_view::npos || rp == std::string_view::npos ||
          rp < lp)
        fail(lineno, "expected INPUT(...), OUTPUT(...), or an assignment");
      const std::string_view kw = trim(line.substr(0, lp));
      const std::string_view arg = trim(line.substr(lp + 1, rp - lp - 1));
      if (arg.empty()) fail(lineno, std::string(kw) + " needs a net name");
      if (ieq(kw, "INPUT")) {
        if (!ids.emplace(arg, kInputPending).second)
          fail(lineno, "duplicate INPUT " + std::string(arg));
        input_order.push_back(arg);
      } else if (ieq(kw, "OUTPUT")) {
        if (!output_seen.insert(arg).second)
          fail(lineno, "duplicate OUTPUT " + std::string(arg));
        output_order.push_back(arg);
      } else {
        std::string up(kw);
        for (char& c : up) c = static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
        fail(lineno, "unknown declaration '" + up + "'");
      }
      continue;
    }

    const std::string_view lhs = trim(line.substr(0, eq));
    const std::string_view rhs = trim(line.substr(eq + 1));
    if (lhs.empty()) fail(lineno, "missing net name before '='");
    const auto lp = rhs.find('(');
    const auto rp = rhs.rfind(')');
    if (lp == std::string_view::npos || rp == std::string_view::npos || rp < lp)
      fail(lineno, "expected <net> = OP(args)");
    const std::string_view op = trim(rhs.substr(0, lp));
    const auto type = gate_type_from(op);
    if (!type) {
      if (ieq(op, "DFF") || ieq(op, "DFFSR") || ieq(op, "LATCH"))
        fail(lineno, "sequential element '" + std::string(op) +
                         "' not supported: PROTEST analyses combinational "
                         "circuits (use scan extraction first)");
      fail(lineno, "unknown gate type '" + std::string(op) + "'");
    }

    const std::uint32_t args_begin = static_cast<std::uint32_t>(args_arena.size());
    std::string_view body = rhs.substr(lp + 1, rp - lp - 1);
    while (!body.empty()) {
      const std::size_t comma = body.find(',');
      const std::string_view tok = trim(body.substr(0, comma));
      if (tok.empty()) {
        if (comma == std::string_view::npos && args_arena.size() == args_begin)
          break;  // empty argument list: CONST0()
        fail(lineno, "empty operand in argument list");
      }
      args_arena.push_back(tok);
      if (comma == std::string_view::npos) break;
      body = body.substr(comma + 1);
    }
    if (auto it = ids.find(lhs); it != ids.end() && it->second == kInputPending)
      fail(lineno, "net '" + std::string(lhs) + "' already an INPUT");
    const std::uint32_t args_end = static_cast<std::uint32_t>(args_arena.size());
    if (!def_index
             .emplace(lhs, static_cast<std::uint32_t>(defs.size()))
             .second)
      fail(lineno, "net '" + std::string(lhs) + "' defined twice");
    defs.push_back(Def{lhs, *type, args_begin, args_end, lineno});
  }

  Netlist net;
  net.reserve(input_order.size() + defs.size());
  for (const std::string_view name : input_order)
    ids[name] = net.add_input(std::string(name));

  // Resolve definitions depth-first IN FILE ORDER (forward references are
  // legal in .bench).  File-order ids make write -> read -> write
  // byte-stable.
  enum class Mark : char { White, Grey, Black };
  std::vector<Mark> marks(defs.size(), Mark::White);
  // Explicit stack to keep deep netlists from overflowing the call stack.
  struct Frame {
    std::uint32_t def;
    std::uint32_t next_arg = 0;
  };
  std::vector<Frame> stack;
  std::vector<NodeId> fanin;
  // Every Grey def sits on the DFS stack, so the cycle is the stack suffix
  // starting at the back edge's target, closed by repeating that net.
  auto cycle_fail = [&](std::uint32_t target) {
    std::size_t start = 0;
    while (start < stack.size() && stack[start].def != target) ++start;
    std::string path;
    for (std::size_t k = start; k < stack.size(); ++k) {
      const Def& pd = defs[stack[k].def];
      path += std::string(pd.name) + " (line " + std::to_string(pd.line) +
              ") -> ";
    }
    path += std::string(defs[target].name);
    fail(defs[target].line, "combinational cycle: " + path);
  };
  auto resolve = [&](std::uint32_t root) {
    stack.clear();
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const Def& d = defs[fr.def];
      if (fr.next_arg == 0) {
        Mark& m = marks[fr.def];
        if (m == Mark::Grey) cycle_fail(fr.def);
        if (m == Mark::Black) {
          stack.pop_back();
          continue;
        }
        m = Mark::Grey;
      }
      bool descended = false;
      while (fr.next_arg < d.args_end - d.args_begin) {
        const std::string_view a = args_arena[d.args_begin + fr.next_arg];
        ++fr.next_arg;
        if (ids.contains(a)) continue;
        const auto dit = def_index.find(a);
        if (dit == def_index.end())
          throw BenchParseError("bench: net '" + std::string(a) +
                                "' is referenced but never defined");
        if (marks[dit->second] == Mark::Grey) cycle_fail(dit->second);
        stack.push_back({dit->second, 0});
        descended = true;
        break;
      }
      if (descended) continue;
      fanin.clear();
      for (std::uint32_t k = d.args_begin; k < d.args_end; ++k)
        fanin.push_back(ids.at(args_arena[k]));
      try {
        ids[d.name] = net.add_gate(d.type, fanin, std::string(d.name));
      } catch (const std::invalid_argument& e) {
        fail(d.line, e.what());
      }
      marks[fr.def] = Mark::Black;
      stack.pop_back();
    }
  };

  for (std::uint32_t i = 0; i < defs.size(); ++i) resolve(i);
  if (output_order.empty())
    throw BenchParseError("bench: no OUTPUT declarations");
  for (const std::string_view o : output_order) {
    const auto it = ids.find(o);
    if (it == ids.end() || it->second == kInputPending) {
      if (it == ids.end())
        throw BenchParseError("bench: OUTPUT net '" + std::string(o) +
                              "' never defined");
    }
    net.mark_output(it->second);
  }
  net.finalize();
  return net;
}

}  // namespace

Netlist read_bench(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = std::move(buf).str();
  return read_bench_text(text);
}

Netlist read_bench_string(const std::string& text) {
  return read_bench_text(text);
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw BenchParseError("bench: cannot open file '" + path + "'");
  return read_bench(f);
}

void write_bench(std::ostream& out, const Netlist& net) {
  // Assign unique printable names.
  std::unordered_map<std::string_view, NodeId> used;
  used.reserve(net.size());
  std::vector<std::string> names(net.size());
  for (NodeId n = 0; n < net.size(); ++n) {
    const std::string& nm = net.gate(n).name;
    if (!nm.empty()) {
      names[n] = nm;
      used.emplace(names[n], n);
    }
  }
  for (NodeId n = 0; n < net.size(); ++n) {
    if (!names[n].empty()) continue;
    std::string cand = "n" + std::to_string(n);
    while (used.contains(cand)) cand += "_";
    names[n] = std::move(cand);
    used.emplace(names[n], n);
  }

  std::string buf;
  buf.reserve(24 * net.size());
  buf += "# written by protest\n";
  for (NodeId i : net.inputs()) {
    buf += "INPUT(";
    buf += names[i];
    buf += ")\n";
  }
  for (NodeId o : net.outputs()) {
    buf += "OUTPUT(";
    buf += names[o];
    buf += ")\n";
  }
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    if (g.type == GateType::Input) continue;
    buf += names[n];
    buf += " = ";
    switch (g.type) {
      case GateType::Buf: buf += "BUFF"; break;
      case GateType::Not: buf += "NOT"; break;
      default: buf += to_string(g.type); break;
    }
    buf += '(';
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      if (i) buf += ", ";
      buf += names[g.fanin[i]];
    }
    buf += ")\n";
  }
  out << buf;
}

std::string write_bench_string(const Netlist& net) {
  std::ostringstream ss;
  write_bench(ss, net);
  return ss.str();
}

}  // namespace protest
