#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace protest {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

std::optional<GateType> gate_type_from(const std::string& op_upper) {
  if (op_upper == "AND") return GateType::And;
  if (op_upper == "NAND") return GateType::Nand;
  if (op_upper == "OR") return GateType::Or;
  if (op_upper == "NOR") return GateType::Nor;
  if (op_upper == "XOR") return GateType::Xor;
  if (op_upper == "XNOR") return GateType::Xnor;
  if (op_upper == "NOT" || op_upper == "INV") return GateType::Not;
  if (op_upper == "BUF" || op_upper == "BUFF") return GateType::Buf;
  if (op_upper == "CONST0") return GateType::Const0;
  if (op_upper == "CONST1") return GateType::Const1;
  return std::nullopt;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw BenchParseError("bench:" + std::to_string(line) + ": " + msg);
}

struct Def {
  GateType type;
  std::vector<std::string> args;
  int line;
};

}  // namespace

Netlist read_bench(std::istream& in) {
  std::vector<std::string> input_order;
  std::vector<std::string> output_order;
  std::unordered_map<std::string, Def> defs;
  std::unordered_set<std::string> inputs;

  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    if (auto pos = line.find('#'); pos != std::string::npos) line.resize(pos);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const auto lp = line.find('(');
      const auto rp = line.rfind(')');
      if (lp == std::string::npos || rp == std::string::npos || rp < lp)
        fail(lineno, "expected INPUT(...), OUTPUT(...), or an assignment");
      const std::string kw = upper(trim(line.substr(0, lp)));
      const std::string arg = trim(line.substr(lp + 1, rp - lp - 1));
      if (arg.empty()) fail(lineno, kw + " needs a net name");
      if (kw == "INPUT") {
        if (!inputs.insert(arg).second) fail(lineno, "duplicate INPUT " + arg);
        input_order.push_back(arg);
      } else if (kw == "OUTPUT") {
        output_order.push_back(arg);
      } else {
        fail(lineno, "unknown declaration '" + kw + "'");
      }
      continue;
    }

    const std::string lhs = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));
    if (lhs.empty()) fail(lineno, "missing net name before '='");
    const auto lp = rhs.find('(');
    const auto rp = rhs.rfind(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp)
      fail(lineno, "expected <net> = OP(args)");
    const std::string op = upper(trim(rhs.substr(0, lp)));
    const auto type = gate_type_from(op);
    if (!type) {
      if (op == "DFF" || op == "DFFSR" || op == "LATCH")
        fail(lineno, "sequential element '" + op +
                         "' not supported: PROTEST analyses combinational "
                         "circuits (use scan extraction first)");
      fail(lineno, "unknown gate type '" + op + "'");
    }

    std::vector<std::string> args;
    std::string body = rhs.substr(lp + 1, rp - lp - 1);
    std::stringstream ss(body);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      tok = trim(tok);
      if (tok.empty()) fail(lineno, "empty operand in argument list");
      args.push_back(tok);
    }
    if (inputs.count(lhs)) fail(lineno, "net '" + lhs + "' already an INPUT");
    if (!defs.emplace(lhs, Def{*type, std::move(args), lineno}).second)
      fail(lineno, "net '" + lhs + "' defined twice");
  }

  Netlist net;
  std::unordered_map<std::string, NodeId> ids;
  for (const std::string& name : input_order)
    ids.emplace(name, net.add_input(name));

  // Resolve definitions depth-first (forward references are legal in .bench).
  enum class Mark : char { White, Grey, Black };
  std::unordered_map<std::string, Mark> marks;
  // Explicit stack to keep deep netlists from overflowing the call stack.
  struct Frame {
    std::string name;
    std::size_t next_arg = 0;
  };
  auto resolve = [&](const std::string& root) {
    if (ids.count(root)) return;
    std::vector<Frame> stack;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& fr = stack.back();
      auto dit = defs.find(fr.name);
      if (dit == defs.end())
        throw BenchParseError("bench: net '" + fr.name +
                              "' is referenced but never defined");
      const Def& d = dit->second;
      if (fr.next_arg == 0) {
        Mark& m = marks[fr.name];
        if (m == Mark::Grey)
          fail(d.line, "combinational cycle through net '" + fr.name + "'");
        if (m == Mark::Black || ids.count(fr.name)) {
          stack.pop_back();
          continue;
        }
        m = Mark::Grey;
      }
      bool descended = false;
      while (fr.next_arg < d.args.size()) {
        const std::string& a = d.args[fr.next_arg];
        ++fr.next_arg;
        if (!ids.count(a)) {
          if (marks[a] == Mark::Grey)
            fail(d.line, "combinational cycle through net '" + a + "'");
          stack.push_back({a, 0});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      std::vector<NodeId> fanin;
      fanin.reserve(d.args.size());
      for (const std::string& a : d.args) fanin.push_back(ids.at(a));
      try {
        ids.emplace(fr.name, net.add_gate(d.type, std::move(fanin), fr.name));
      } catch (const std::invalid_argument& e) {
        fail(d.line, e.what());
      }
      marks[fr.name] = Mark::Black;
      stack.pop_back();
    }
  };

  for (const auto& [name, def] : defs) {
    (void)def;
    resolve(name);
  }
  if (output_order.empty())
    throw BenchParseError("bench: no OUTPUT declarations");
  for (const std::string& o : output_order) {
    auto it = ids.find(o);
    if (it == ids.end())
      throw BenchParseError("bench: OUTPUT net '" + o + "' never defined");
    net.mark_output(it->second);
  }
  net.finalize();
  return net;
}

Netlist read_bench_string(const std::string& text) {
  std::istringstream ss(text);
  return read_bench(ss);
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw BenchParseError("bench: cannot open file '" + path + "'");
  return read_bench(f);
}

void write_bench(std::ostream& out, const Netlist& net) {
  // Assign unique printable names.
  std::unordered_set<std::string> used;
  std::vector<std::string> names(net.size());
  for (NodeId n = 0; n < net.size(); ++n) {
    const std::string& nm = net.gate(n).name;
    if (!nm.empty()) {
      names[n] = nm;
      used.insert(nm);
    }
  }
  for (NodeId n = 0; n < net.size(); ++n) {
    if (!names[n].empty()) continue;
    std::string cand = "n" + std::to_string(n);
    while (used.count(cand)) cand += "_";
    names[n] = cand;
    used.insert(cand);
  }

  out << "# written by protest\n";
  for (NodeId i : net.inputs()) out << "INPUT(" << names[i] << ")\n";
  for (NodeId o : net.outputs()) out << "OUTPUT(" << names[o] << ")\n";
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    if (g.type == GateType::Input) continue;
    out << names[n] << " = ";
    switch (g.type) {
      case GateType::Buf: out << "BUFF"; break;
      case GateType::Not: out << "NOT"; break;
      default: out << to_string(g.type); break;
    }
    out << '(';
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      if (i) out << ", ";
      out << names[g.fanin[i]];
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& net) {
  std::ostringstream ss;
  write_bench(ss, net);
  return ss.str();
}

}  // namespace protest
