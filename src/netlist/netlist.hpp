// Combinational gate-level netlist: the substrate every PROTEST algorithm
// works on.  Matches the paper's S = <I, O, K, B> notation: I = primary
// inputs, O = primary outputs, K = all nodes, B = logic components.
//
// Nodes are created in topological order by construction (a gate may only
// reference already-existing fanins), so `for (NodeId n = 0; n < size(); ++n)`
// is a forward topological sweep and the reverse loop is a backward sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"

namespace protest {

class CompiledNetlist;

/// One node of the netlist: a primary input, constant, or logic gate.
struct Gate {
  GateType type = GateType::Input;
  std::vector<NodeId> fanin;
  std::string name;  ///< optional net name (unique when non-empty)
};

class Netlist {
 public:
  /// Pre-sizes the node store (loaders that know the node count up front).
  void reserve(std::size_t num_nodes);

  /// Adds a primary input node.
  NodeId add_input(std::string name = {});

  /// Adds a gate whose fanins must already exist.  Unary types (Buf, Not)
  /// require exactly one fanin; n-ary logic ops require >= 1; constants 0.
  NodeId add_gate(GateType type, std::vector<NodeId> fanin,
                  std::string name = {});

  /// Marks an existing node as a primary output (order of calls is the
  /// output order).  A node may be marked at most once.
  void mark_output(NodeId n);

  /// Builds fanout lists, levels, and the name index; validates the
  /// structure.  Must be called before analysis; add_* calls afterwards
  /// throw.  Idempotent structure: call once.
  void finalize();

  bool finalized() const { return finalized_; }

  // --- structure ------------------------------------------------------
  std::size_t size() const { return gates_.size(); }
  const Gate& gate(NodeId n) const { return gates_[n]; }
  std::span<const NodeId> inputs() const { return inputs_; }
  std::span<const NodeId> outputs() const { return outputs_; }
  bool is_input(NodeId n) const { return gates_[n].type == GateType::Input; }
  bool is_output(NodeId n) const { return output_flag_[n]; }

  /// Gates (and constants) only, i.e. all nodes that are not primary inputs.
  std::size_t num_gates() const { return size() - inputs_.size(); }

  // --- derived structure (valid after finalize) -------------------------
  /// Immediate successors of n: gates that have n as a fanin.  A gate with
  /// n on two pins appears twice (two distinct branches of the stem).
  /// Flat CSR storage — one contiguous edge array for the whole netlist.
  std::span<const NodeId> fanout(NodeId n) const {
    return {fanout_edges_.data() + fanout_offset_[n],
            fanout_offset_[n + 1] - fanout_offset_[n]};
  }

  /// Columnar simulation view (netlist/compiled.hpp), built by finalize()
  /// and shared by copies of this netlist.  Throws before finalize().
  const CompiledNetlist& compiled() const;

  /// Logic level: inputs/constants are 0, gates are 1 + max fanin level.
  unsigned level(NodeId n) const { return levels_[n]; }
  unsigned depth() const { return depth_; }

  /// Nodes with >= 2 fanout branches (candidate joining points, fig. 2).
  std::span<const NodeId> stems() const { return stems_; }

  /// Looks a node up by name; returns kNoNode if absent.
  NodeId find(const std::string& name) const;

  /// Name of node n, or a synthesized "n<id>" when unnamed.
  std::string name_of(NodeId n) const;

 private:
  void check_open() const;

  std::vector<Gate> gates_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<char> output_flag_;
  std::vector<std::uint32_t> fanout_offset_;  ///< [size + 1], CSR
  std::vector<NodeId> fanout_edges_;
  std::vector<unsigned> levels_;
  std::vector<NodeId> stems_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::shared_ptr<const CompiledNetlist> compiled_;
  unsigned depth_ = 0;
  bool finalized_ = false;
};

}  // namespace protest
