#include "netlist/compiled.hpp"

#include <algorithm>

#include "netlist/netlist.hpp"

namespace protest {

CompiledNetlist::CompiledNetlist(const Netlist& net) {
  const std::size_t n = net.size();
  num_inputs_ = net.inputs().size();
  depth_ = net.depth();

  types_.resize(n);
  fanin_offset_.resize(n + 1);
  std::size_t edges = 0;
  for (NodeId id = 0; id < n; ++id) {
    const Gate& g = net.gate(id);
    types_[id] = g.type;
    fanin_offset_[id] = static_cast<std::uint32_t>(edges);
    edges += g.fanin.size();
    max_fanin_ = std::max(max_fanin_, g.fanin.size());
  }
  fanin_offset_[n] = static_cast<std::uint32_t>(edges);
  fanin_edges_.reserve(edges);
  for (NodeId id = 0; id < n; ++id)
    for (NodeId f : net.gate(id).fanin) fanin_edges_.push_back(f);

  // Levelized order: counting sort by level, then type-sort within each
  // level so same-type gates form maximal runs.  Inputs and constants are
  // excluded — they have no per-pass evaluation.
  level_begin_.assign(depth_ + 2, 0);
  for (NodeId id = 0; id < n; ++id) {
    const GateType t = types_[id];
    if (t == GateType::Input) continue;
    if (t == GateType::Const0 || t == GateType::Const1) {
      constants_.push_back(id);
      continue;
    }
    ++level_begin_[net.level(id) + 1];
  }
  for (unsigned l = 1; l < level_begin_.size(); ++l)
    level_begin_[l] += level_begin_[l - 1];
  order_.resize(level_begin_.back());
  std::vector<std::uint32_t> cursor(level_begin_.begin(),
                                    level_begin_.end() - 1);
  for (NodeId id = 0; id < n; ++id) {
    const GateType t = types_[id];
    if (t == GateType::Input || t == GateType::Const0 ||
        t == GateType::Const1)
      continue;
    order_[cursor[net.level(id)]++] = id;
  }
  for (unsigned l = 0; l + 1 < level_begin_.size(); ++l) {
    const auto begin = order_.begin() + level_begin_[l];
    const auto end = order_.begin() + level_begin_[l + 1];
    std::stable_sort(begin, end, [&](NodeId a, NodeId b) {
      return static_cast<int>(types_[a]) < static_cast<int>(types_[b]);
    });
  }

  // Type runs within each level.
  for (unsigned l = 0; l + 1 < level_begin_.size(); ++l) {
    std::uint32_t i = level_begin_[l];
    const std::uint32_t end = level_begin_[l + 1];
    while (i < end) {
      const GateType t = types_[order_[i]];
      std::uint32_t j = i + 1;
      while (j < end && types_[order_[j]] == t) ++j;
      runs_.push_back(Run{t, i, j});
      i = j;
    }
  }
}

}  // namespace protest
