// Technology bookkeeping: CMOS transistor counts and gate equivalents.
// The paper reports circuit sizes as transistor counts "based on a CMOS
// library" (Table 7); we use the standard static-CMOS costs.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace protest {

/// Static-CMOS transistor cost of one gate with `fanin` inputs:
/// INV 2, BUF 4, NANDn/NORn 2n, ANDn/ORn 2n+2, 2-input XOR/XNOR 10
/// (n-ary as a chain of 2-input stages).  Inputs and constants cost 0.
std::size_t transistor_count(GateType t, std::size_t fanin);

/// Total transistor count of a netlist.
std::size_t transistor_count(const Netlist& net);

/// Gate equivalents (1 GE = 1 NAND2 = 4 transistors), rounded up per gate.
std::size_t gate_equivalents(const Netlist& net);

}  // namespace protest
