// Reader/writer for the ISCAS-85 ".bench" structural netlist dialect —
// the public equivalent of the structure description language the original
// PROTEST compiled (sect. 7).
//
// Supported grammar (case-insensitive keywords, '#' comments):
//   INPUT(net)
//   OUTPUT(net)
//   net = AND(a, b, ...) | NAND(...) | OR(...) | NOR(...) | XOR(...)
//       | XNOR(...) | NOT(a) | BUF(a) | BUFF(a) | CONST0() | CONST1()
// Definitions may appear in any order (forward references are resolved);
// sequential elements (DFF) are rejected — PROTEST analyses combinational
// circuits only.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "netlist/netlist.hpp"

namespace protest {

/// Error raised on malformed .bench input (message includes line number).
class BenchParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a .bench description into a finalized netlist.
Netlist read_bench(std::istream& in);
Netlist read_bench_string(const std::string& text);
Netlist read_bench_file(const std::string& path);

/// Writes a finalized netlist as .bench (unnamed nets get synthetic names).
void write_bench(std::ostream& out, const Netlist& net);
std::string write_bench_string(const Netlist& net);

}  // namespace protest
