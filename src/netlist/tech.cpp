#include "netlist/tech.hpp"

namespace protest {

std::size_t transistor_count(GateType t, std::size_t fanin) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Buf: return 4;
    case GateType::Not: return 2;
    case GateType::Nand:
    case GateType::Nor:
      return fanin <= 1 ? 2 : 2 * fanin;
    case GateType::And:
    case GateType::Or:
      return fanin <= 1 ? 4 : 2 * fanin + 2;
    case GateType::Xor:
    case GateType::Xnor:
      return fanin <= 1 ? 2 : 10 * (fanin - 1);
  }
  return 0;
}

std::size_t transistor_count(const Netlist& net) {
  std::size_t total = 0;
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    total += transistor_count(g.type, g.fanin.size());
  }
  return total;
}

std::size_t gate_equivalents(const Netlist& net) {
  std::size_t total = 0;
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    const std::size_t t = transistor_count(g.type, g.fanin.size());
    total += (t + 3) / 4;
  }
  return total;
}

}  // namespace protest
