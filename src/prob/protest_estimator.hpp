// The PROTEST signal-probability estimator (paper sect. 2).
//
// For every gate whose fanin cones reconverge, the estimator conditions on
// a bounded subset W of the joining points V(a,b): formula (2),
//
//   p_k ~ sum over assignments A_v of W:  P(A_v) * f(P(a_1|A_v),...,P(a_n|A_v))
//
// Conditional probabilities P(a_i | A_v) are obtained by re-propagating the
// (depth-bounded) fanin cone with the joining points pinned to constants.
// P(A_v) is computed as a chain of the same conditionals in topological
// order (exact relative to the in-cone propagation, sharper than the
// independence product).
//
// W is selected by the covariance criterion of the paper: maximize
// |Cov(a,x) * Cov(b,x)| / S(p_x)^2, with covariances obtained from the
// one-point conditionals Cov(a,x) = p_x (1-p_x) (P(a|x=1) - P(a|x=0)).
//
// Parameters (paper sect. 2): MAXVERS bounds |W|, MAXLIST bounds the path
// length searched for joining points.
//
// Thread safety: an estimator is NOT safe for concurrent use, even
// through const methods — the per-gate plan, the selection state the
// incremental paths rely on, and the evaluation scratch are memoized
// across calls.  Use one estimator per thread.
#pragma once

#include <cstddef>
#include <memory>

#include "prob/signal_prob.hpp"

namespace protest {

struct ProtestParams {
  /// Maximal number of joining points conditioned on per gate (|W|).
  unsigned maxvers = 4;
  /// Maximal backward path length searched for joining points (0 = no bound).
  unsigned maxlist = 12;
  /// Cap on candidate joining points that are scored per gate.
  unsigned max_candidates = 24;
  /// Scores below this threshold never enter W.
  double min_score = 1e-12;
};

struct ProtestStats {
  std::size_t gates_conditioned = 0;   ///< gates that used formula (2)
  std::size_t total_joining_points = 0;///< sum of candidate |V| over gates
  std::size_t max_w = 0;               ///< largest |W| actually used
};

class ProtestEstimator {
 public:
  explicit ProtestEstimator(const Netlist& net, ProtestParams params = {});
  ~ProtestEstimator();
  ProtestEstimator(ProtestEstimator&&) noexcept;

  /// Estimates the signal probability of every node.
  ///
  /// The per-gate structural plan (bounded cones, candidate joining
  /// points) is built lazily on the first evaluation and cached for the
  /// estimator's lifetime: repeated calls — and the incremental path —
  /// pay only the per-tuple conditioning work.  The conditioning-set
  /// selection itself depends on the tuple and is redone per call.
  std::vector<double> signal_probs(std::span<const double> input_probs) const;

  /// Incremental re-estimation for a single-coordinate perturbation:
  /// `base_node_probs` must be the vector this estimator returned for
  /// `base_inputs` (any entry point); the result is the estimate for the
  /// tuple with input `input_index` changed to `new_p`, and only gates in
  /// the changed input's transitive fanout cone are re-evaluated.
  ///
  /// PerturbMode::Exact re-selects each touched gate's conditioning set —
  /// the result equals signal_probs() on the perturbed tuple bit for bit.
  /// PerturbMode::FrozenSelection reuses the sets selected at the base
  /// tuple (re-selecting them first if the estimator's selection state
  /// belongs to a different tuple): the result is bit-for-bit what
  /// signal_probs_batch({base, perturbed}) returns for the perturbed
  /// element, at a fraction of the cost — the neighborhood-screening
  /// fidelity.  stats() is not updated by this path.
  std::vector<double> signal_probs_perturb(
      std::span<const double> base_inputs,
      std::span<const double> base_node_probs, std::size_t input_index,
      double new_p, PerturbMode mode = PerturbMode::Exact) const;

  /// Batched estimation: one probability vector per input tuple.
  ///
  /// The expensive per-gate structure work — bounded-cone discovery,
  /// candidate joining points, and the covariance-scored selection of the
  /// conditioning set W — is performed once, on the first tuple, and reused
  /// for every subsequent tuple; only the conditional re-propagation of
  /// formula (2) runs per tuple.  Element 0 therefore equals
  /// signal_probs(batch[0]) exactly, while later elements condition on the
  /// W chosen at batch[0].  This is the intended semantics for
  /// neighbor-tuple workloads (the hill climber evaluates hundreds of
  /// perturbations of one operating point per sweep); for unrelated tuples
  /// call signal_probs() per tuple instead.
  std::vector<std::vector<double>> signal_probs_batch(
      std::span<const InputProbs> batch) const;

  /// Statistics of the most recent signal_probs() run.
  const ProtestStats& stats() const { return stats_; }

  const ProtestParams& params() const { return params_; }
  const Netlist& netlist() const { return net_; }

 private:
  class Evaluator;
  Evaluator& evaluator() const;  ///< builds the plan on first use

  const Netlist& net_;
  ProtestParams params_;
  mutable ProtestStats stats_;
  mutable std::unique_ptr<Evaluator> evaluator_;  ///< cached per-netlist plan
};

}  // namespace protest
