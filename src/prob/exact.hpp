// Exact signal probabilities.  Exponential in the worst case (the paper
// cites [Wu84]: the problem is NP-hard); used as the validation oracle for
// the estimators, never inside the PROTEST pipeline itself.
#pragma once

#include "bdd/bdd.hpp"
#include "prob/signal_prob.hpp"

namespace protest {

/// Exact per-node probabilities via ROBDDs (throws BddLimitExceeded when
/// the circuit is too wide for the node budget).
std::vector<double> exact_signal_probs_bdd(const Netlist& net,
                                           std::span<const double> input_probs,
                                           std::size_t node_limit = 2'000'000);

/// Exact per-node probabilities by weighted exhaustive enumeration
/// (requires <= 24 primary inputs).
std::vector<double> exact_signal_probs_enum(const Netlist& net,
                                            std::span<const double> input_probs);

/// Builds the BDD of every node of the net inside `bdd` (inputs are
/// variables in netlist input order).  Exposed for the miter oracle.
std::vector<Bdd::Ref> build_node_bdds(const Netlist& net, Bdd& bdd);

}  // namespace protest
