#include "prob/cutting.hpp"

#include <algorithm>

#include "prob/naive.hpp"

namespace protest {
namespace {

ProbBounds bounds_not(ProbBounds a) { return {1.0 - a.hi, 1.0 - a.lo}; }

ProbBounds bounds_xor2(ProbBounds a, ProbBounds b) {
  // p (+) q = p + q - 2pq is bilinear: extrema lie on the corners.
  const double c[4] = {
      a.lo + b.lo - 2 * a.lo * b.lo, a.lo + b.hi - 2 * a.lo * b.hi,
      a.hi + b.lo - 2 * a.hi * b.lo, a.hi + b.hi - 2 * a.hi * b.hi};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

}  // namespace

std::vector<ProbBounds> cutting_signal_bounds(const Netlist& net,
                                              std::span<const double> input_probs) {
  validate_input_probs(net, input_probs);

  std::vector<ProbBounds> b(net.size());
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    b[inputs[i]] = {input_probs[i], input_probs[i]};

  std::vector<ProbBounds> ins;
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    if (g.type == GateType::Input) continue;
    ins.clear();
    for (NodeId f : g.fanin) {
      // Every branch of a multi-fanout stem is cut (see header: keeping one
      // branch connected is unsound under non-monotone reconvergence).
      const bool multi = net.fanout(f).size() >= 2;
      ins.push_back(multi ? ProbBounds{0.0, 1.0} : b[f]);
    }
    ProbBounds r;
    switch (g.type) {
      case GateType::Const0: r = {0.0, 0.0}; break;
      case GateType::Const1: r = {1.0, 1.0}; break;
      case GateType::Buf: r = ins[0]; break;
      case GateType::Not: r = bounds_not(ins[0]); break;
      case GateType::And:
      case GateType::Nand: {
        double lo = 1.0, hi = 1.0;
        for (const ProbBounds& x : ins) {
          lo *= x.lo;
          hi *= x.hi;
        }
        r = {lo, hi};
        if (g.type == GateType::Nand) r = bounds_not(r);
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        double lo = 1.0, hi = 1.0;
        for (const ProbBounds& x : ins) {
          lo *= 1.0 - x.hi;
          hi *= 1.0 - x.lo;
        }
        r = {1.0 - hi, 1.0 - lo};
        if (g.type == GateType::Nor) r = bounds_not(r);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        ProbBounds acc{0.0, 0.0};
        for (const ProbBounds& x : ins) acc = bounds_xor2(acc, x);
        r = g.type == GateType::Xnor ? bounds_not(acc) : acc;
        break;
      }
      case GateType::Input: break;
    }
    r.lo = std::clamp(r.lo, 0.0, 1.0);
    r.hi = std::clamp(r.hi, 0.0, 1.0);
    b[n] = r;
  }
  return b;
}

}  // namespace protest
