// Monte-Carlo signal probabilities: simulate N weighted random patterns and
// count ones per node.  This is the "extrapolate from runs of logic
// simulation" approach of STAFAN [AgJa84] applied to signal probabilities;
// the library uses it as a scalable reference when BDDs blow up.
#pragma once

#include <cstdint>

#include "prob/signal_prob.hpp"

namespace protest {

class BlockSimulator;

std::vector<double> monte_carlo_signal_probs(const Netlist& net,
                                             std::span<const double> input_probs,
                                             std::size_t num_patterns,
                                             std::uint64_t seed);

/// Same, reusing the caller's simulator (no input validation — the engine
/// batch path hoists one BlockSimulator across many validated tuples).
std::vector<double> monte_carlo_signal_probs(BlockSimulator& sim,
                                             std::span<const double> input_probs,
                                             std::size_t num_patterns,
                                             std::uint64_t seed);

}  // namespace protest
