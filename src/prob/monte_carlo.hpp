// Monte-Carlo signal probabilities: simulate N weighted random patterns and
// count ones per node.  This is the "extrapolate from runs of logic
// simulation" approach of STAFAN [AgJa84] applied to signal probabilities;
// the library uses it as a scalable reference when BDDs blow up.
//
// Sharded sampling and the stream-derivation rule
// -----------------------------------------------
// The pattern space is split into fixed-size SHARDS of
// kMonteCarloShardPatterns patterns each (the last shard may be partial).
// Shard s draws its patterns from a private counter-based RNG stream whose
// state is derived purely from (seed, s) — see monte_carlo_stream_seed():
//
//   state_0 = mix64(seed XOR (s + 1) * 0x9e3779b97f4a7c15)
//   draw_k  = splitmix64(state_0 + k * gamma)        (sequential splitmix)
//
// Within a shard the draw order is: for each 64-pattern block, for each
// input (netlist input order), 64 per-bit draws (top 32 bits compared
// against trunc(p * 2^32), the same thresholding PatternSet::weighted
// uses).  Because the decomposition depends only on (seed, num_patterns)
// and never on the thread count, and because the per-node one-counts are
// integers (summation is exact and order-free), the estimate is
// BIT-IDENTICAL for any number of threads — and identical between
// single-call and batch evaluation of the same tuple, which share this one
// derivation rule (regression-tested in tests/parallel_test.cpp).
#pragma once

#include <cstdint>
#include <span>

#include "prob/signal_prob.hpp"

namespace protest {

class BlockSimulator;
class WordSimulator;

/// Patterns per Monte-Carlo shard (128 blocks of 64).  Small enough that
/// the default 100k-pattern budget yields a dozen shards to balance across
/// workers, large enough that per-shard setup is noise.
inline constexpr std::size_t kMonteCarloShardPatterns = 8192;

/// Number of shards covering `num_patterns` patterns.
std::size_t monte_carlo_num_shards(std::size_t num_patterns);

/// Initial RNG state of shard `shard_index` (the documented derivation
/// rule above).  Exposed so tests can pin the stream contract.
std::uint64_t monte_carlo_stream_seed(std::uint64_t seed,
                                      std::uint64_t shard_index);

/// Per-input '1' thresholds for weighted drawing: trunc(p * 2^32), compared
/// against the top 32 bits of each draw (bias < 2^-32).  Throws
/// std::invalid_argument on probabilities outside [0,1].
std::vector<std::uint64_t> monte_carlo_thresholds(
    std::span<const double> input_probs);

/// Simulates one shard and ACCUMULATES per-node one-counts into `ones`
/// (netlist-sized; not cleared).  `word_buf` is caller-provided scratch for
/// the per-input pattern words — reusing it across shards and tuples keeps
/// the hot loop allocation-free (no PatternSet is materialized).  The
/// shard boundary doubles as the cancellation checkpoint (util/cancel.hpp):
/// when the calling thread's CancelToken is cancelled this throws
/// OperationCancelled before simulating, so a cancelled Monte-Carlo job
/// stops within one shard.
void monte_carlo_accumulate_shard(BlockSimulator& sim,
                                  std::span<const std::uint64_t> thresholds,
                                  std::size_t shard_index,
                                  std::size_t num_patterns, std::uint64_t seed,
                                  std::span<std::size_t> ones,
                                  std::vector<std::uint64_t>& word_buf);

/// Word-blocked shard simulation: generates W = words_per_block() blocks
/// of pattern words per pass straight into the simulator's input slots
/// and evaluates them in one compiled-core sweep.  The draw order (per
/// block, per input, 64 bits) is EXACTLY the documented stream contract,
/// so the one-counts — and therefore every Monte-Carlo estimate — are
/// bit-identical to the one-block-per-pass path for every width.
void monte_carlo_accumulate_shard(WordSimulator& sim,
                                  std::span<const std::uint64_t> thresholds,
                                  std::size_t shard_index,
                                  std::size_t num_patterns, std::uint64_t seed,
                                  std::span<std::size_t> ones);

std::vector<double> monte_carlo_signal_probs(const Netlist& net,
                                             std::span<const double> input_probs,
                                             std::size_t num_patterns,
                                             std::uint64_t seed);

/// Same, reusing the caller's simulator (no input validation — the engine
/// batch path hoists one BlockSimulator across many validated tuples).
std::vector<double> monte_carlo_signal_probs(BlockSimulator& sim,
                                             std::span<const double> input_probs,
                                             std::size_t num_patterns,
                                             std::uint64_t seed);

}  // namespace protest
