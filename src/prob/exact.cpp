#include "prob/exact.hpp"

#include <stdexcept>

#include "prob/naive.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"

namespace protest {

std::vector<Bdd::Ref> build_node_bdds(const Netlist& net, Bdd& bdd) {
  if (bdd.num_vars() != net.inputs().size())
    throw std::invalid_argument("build_node_bdds: BDD variable count mismatch");
  std::vector<Bdd::Ref> f(net.size(), bdd.zero());
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    f[inputs[i]] = bdd.var(static_cast<unsigned>(i));

  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    switch (g.type) {
      case GateType::Input: break;
      case GateType::Const0: f[n] = bdd.zero(); break;
      case GateType::Const1: f[n] = bdd.one(); break;
      case GateType::Buf: f[n] = f[g.fanin[0]]; break;
      case GateType::Not: f[n] = bdd.apply_not(f[g.fanin[0]]); break;
      case GateType::And:
      case GateType::Nand: {
        Bdd::Ref acc = bdd.one();
        for (NodeId a : g.fanin) acc = bdd.apply_and(acc, f[a]);
        f[n] = g.type == GateType::Nand ? bdd.apply_not(acc) : acc;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        Bdd::Ref acc = bdd.zero();
        for (NodeId a : g.fanin) acc = bdd.apply_or(acc, f[a]);
        f[n] = g.type == GateType::Nor ? bdd.apply_not(acc) : acc;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        Bdd::Ref acc = bdd.zero();
        for (NodeId a : g.fanin) acc = bdd.apply_xor(acc, f[a]);
        f[n] = g.type == GateType::Xnor ? bdd.apply_not(acc) : acc;
        break;
      }
    }
  }
  return f;
}

std::vector<double> exact_signal_probs_bdd(const Netlist& net,
                                           std::span<const double> input_probs,
                                           std::size_t node_limit) {
  validate_input_probs(net, input_probs);
  Bdd bdd(static_cast<unsigned>(net.inputs().size()), node_limit);
  const auto f = build_node_bdds(net, bdd);
  std::vector<double> p(net.size());
  for (NodeId n = 0; n < net.size(); ++n) p[n] = bdd.sat_prob(f[n], input_probs);
  return p;
}

std::vector<double> exact_signal_probs_enum(const Netlist& net,
                                            std::span<const double> input_probs) {
  validate_input_probs(net, input_probs);
  const std::size_t ni = net.inputs().size();
  if (ni > 24)
    throw std::invalid_argument("exact_signal_probs_enum: > 24 inputs");
  const std::size_t total = std::size_t{1} << ni;

  const PatternSet all = PatternSet::exhaustive(ni);
  BlockSimulator sim(net);
  std::vector<double> p(net.size(), 0.0);
  for (std::size_t b = 0; b < all.num_blocks(); ++b) {
    const auto& vals = sim.run(all, b);
    const std::uint64_t mask = all.valid_mask(b);
    for (std::size_t bit = 0; bit < 64; ++bit) {
      if (!((mask >> bit) & 1u)) break;
      const std::size_t pat = b * 64 + bit;
      if (pat >= total) break;
      double w = 1.0;
      for (std::size_t i = 0; i < ni; ++i)
        w *= ((pat >> i) & 1u) ? input_probs[i] : 1.0 - input_probs[i];
      if (w == 0.0) continue;
      for (NodeId n = 0; n < net.size(); ++n)
        if ((vals[n] >> bit) & 1u) p[n] += w;
    }
  }
  return p;
}

}  // namespace protest
