// Independence propagation of signal probabilities — the algorithm of
// P. Agrawal / V. D. Agrawal [AgAg75].  Exact for circuits without
// reconvergent fan-out (paper sect. 1); on reconvergent circuits it is the
// "cases 1-3 only" approximation that PROTEST's conditioning improves on.
#pragma once

#include "prob/signal_prob.hpp"

namespace protest {

/// Per-node signal probabilities under the pin-independence assumption.
std::vector<double> naive_signal_probs(const Netlist& net,
                                       std::span<const double> input_probs);

/// True iff the circuit has no reconvergent fan-out anywhere (then the
/// naive propagation is exact).
bool is_fanout_reconvergence_free(const Netlist& net);

}  // namespace protest
