#include "prob/naive.hpp"

#include <stdexcept>

#include "netlist/cone.hpp"

namespace protest {

InputProbs uniform_input_probs(const Netlist& net, double p) {
  return InputProbs(net.inputs().size(), p);
}

void validate_input_probs(const Netlist& net, std::span<const double> probs) {
  if (probs.size() != net.inputs().size())
    throw std::invalid_argument("input probability tuple has wrong arity");
  for (double p : probs)
    if (!(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument("input probability outside [0,1]");
}

void validate_perturb_args(const Netlist& net,
                           std::span<const double> base_inputs,
                           std::span<const double> base_node_probs,
                           std::size_t input_index, double new_p) {
  validate_input_probs(net, base_inputs);
  if (base_node_probs.size() != net.size())
    throw std::invalid_argument(
        "signal_probs_perturb: base node probabilities have wrong size");
  if (input_index >= net.inputs().size())
    throw std::invalid_argument(
        "signal_probs_perturb: input index out of range");
  if (!(new_p >= 0.0 && new_p <= 1.0))
    throw std::invalid_argument(
        "signal_probs_perturb: probability outside [0,1]");
}

std::vector<double> naive_signal_probs(const Netlist& net,
                                       std::span<const double> input_probs) {
  validate_input_probs(net, input_probs);
  std::vector<double> p(net.size(), 0.0);
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) p[inputs[i]] = input_probs[i];
  std::vector<double> ins;
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    if (g.type == GateType::Input) continue;
    ins.clear();
    for (NodeId f : g.fanin) ins.push_back(p[f]);
    p[n] = eval_gate_prob(g.type, ins);
  }
  return p;
}

bool is_fanout_reconvergence_free(const Netlist& net) {
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    if (g.fanin.size() < 2) continue;
    if (!joining_points(net, g.fanin, 0).empty()) return false;
  }
  return true;
}

}  // namespace protest
