// Cutting-style probability bounds in the spirit of Savir / Ditlow /
// Bardell [BDS84]: cut fanout branches, treat them as free [0,1] inputs,
// and propagate intervals — the bounds-based baseline the paper contrasts
// PROTEST's point estimates with ("Savir et al. proposed a method to
// determine upper and lower bounds ... PROTEST however computes a real
// number").
//
// Soundness note (found by our property tests): the textbook "cut all but
// one branch" variant is NOT sound under non-monotone (XOR) reconvergence —
// conditioning on the stem value forces the kept branch to a constant
// outside its point interval.  We therefore widen *every* branch of a
// multi-fanout stem to [0,1]; with that, conditioning on all stem values
// places the true probability at a convex combination of box corners, so
// the propagated interval provably contains it.  The price is looseness —
// precisely the weakness of bounds-based measures that motivates PROTEST's
// point estimation.
#pragma once

#include "prob/signal_prob.hpp"

namespace protest {

struct ProbBounds {
  double lo = 0.0;
  double hi = 1.0;
  bool contains(double p) const { return p >= lo - 1e-12 && p <= hi + 1e-12; }
  double width() const { return hi - lo; }
};

/// Per-node probability bounds via branch cutting + interval propagation.
std::vector<ProbBounds> cutting_signal_bounds(const Netlist& net,
                                              std::span<const double> input_probs);

}  // namespace protest
