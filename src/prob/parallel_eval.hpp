// Multi-threaded batch evaluation via per-worker engine clones.
//
// Engines are single-threaded by contract (see engine.hpp); the supported
// parallelism model is one engine per worker.  ParallelBatchEvaluator
// packages it: a fixed thread pool plus a lazily-cloned engine per worker,
// fanning independent evaluations (a tuple batch, a neighborhood sweep)
// across cores.
//
// Semantics: every evaluation goes through SignalProbEngine::signal_probs
// or signal_probs_perturb on SOME clone, and clones share no mutable
// state, so each result is bit-for-bit the corresponding serial
// single-call result — independent of the thread count and of how tasks
// land on workers.  Note the contrast with the engine-level
// signal_probs_batch of state-sharing engines (the PROTEST engine shares
// the conditioning selection chosen at the batch's first tuple): the
// parallel batch here has exact PER-TUPLE semantics for every engine.
// For the frozen-selection neighborhood fidelity, perturb_sweep anchors
// every clone at the same base tuple, which reproduces the serial
// FrozenSelection numbers exactly (the selection depends only on the
// base; each clone re-derives it once per base).
//
// An evaluator instance is itself single-caller (the clones and pool are
// reused across calls); sessions serialize access behind their mutex.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "prob/engine.hpp"
#include "util/executor.hpp"

namespace protest {

class ParallelBatchEvaluator {
 public:
  /// Clones of `prototype` evaluate the work; the prototype itself is
  /// never evaluated through and must outlive the evaluator.  Engines
  /// that parallelize internally (sharded Monte-Carlo) are still handled
  /// correctly, but prefer their built-in parallelism — stacking this
  /// layer on top oversubscribes the machine.
  ParallelBatchEvaluator(const SignalProbEngine& prototype,
                         ParallelConfig parallel = {});

  /// Convenience: builds (and owns) the prototype via make_engine.
  ParallelBatchEvaluator(const Netlist& net, const std::string& engine_name,
                         const EngineConfig& config = {},
                         ParallelConfig parallel = {});

  ~ParallelBatchEvaluator();

  const Netlist& netlist() const { return prototype_.netlist(); }
  std::string_view engine_name() const { return prototype_.name(); }
  unsigned num_workers() const;

  /// The generic fan-out: runs fn(task_index, engine) for every task in
  /// [0, num_tasks), where `engine` is the claiming worker's private
  /// clone.  Exceptions propagate (first one wins).  This is the primitive
  /// the session's parallel neighborhood sweep builds on, with artifact
  /// materialization inside the task.
  void for_each_task(
      std::size_t num_tasks,
      const std::function<void(std::size_t, const SignalProbEngine&)>& fn) const;

  /// One probability vector per tuple, each bit-identical to
  /// prototype-style signal_probs(batch[i]) (exact per-tuple semantics —
  /// see the header comment).  Validates all tuples up front.
  std::vector<std::vector<double>> signal_probs_batch(
      std::span<const InputProbs> batch) const;

  /// The neighborhood sweep: result i is signal_probs_perturb(base_inputs,
  /// base_node_probs, input_index, values[i], mode) — bit-identical to the
  /// serial sweep for both fidelities.
  std::vector<std::vector<double>> perturb_sweep(
      std::span<const double> base_inputs,
      std::span<const double> base_node_probs, std::size_t input_index,
      std::span<const double> values,
      PerturbMode mode = PerturbMode::FrozenSelection) const;

 private:
  const SignalProbEngine& worker_engine(unsigned worker) const;

  std::unique_ptr<SignalProbEngine> owned_prototype_;  ///< name-based ctor
  const SignalProbEngine& prototype_;
  /// Private by default; a SHARED executor when ParallelConfig::executor
  /// was injected (the service layer's one-pool-for-all-sessions seam —
  /// it serializes jobs internally, so evaluators sharing it never race).
  std::shared_ptr<Executor> exec_;
  /// Slot w is touched only by worker w (stable pool indices), so lazy
  /// creation needs no lock.
  mutable std::vector<std::unique_ptr<SignalProbEngine>> engines_;
};

}  // namespace protest
