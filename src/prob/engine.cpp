#include "prob/engine.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "netlist/cone.hpp"
#include "prob/exact.hpp"
#include "prob/monte_carlo.hpp"
#include "prob/naive.hpp"
#include "sim/logic_sim.hpp"

namespace protest {

SignalProbEngine::SignalProbEngine(const Netlist& net, std::string name)
    : net_(net), name_(std::move(name)) {
  if (!net.finalized())
    throw std::invalid_argument("signal-probability engine '" + name_ +
                                "': netlist must be finalized (call "
                                "Netlist::finalize() first)");
}

std::vector<double> SignalProbEngine::signal_probs(
    std::span<const double> input_probs) const {
  validate_input_probs(net_, input_probs);
  return compute(input_probs);
}

std::vector<std::vector<double>> SignalProbEngine::signal_probs_batch(
    std::span<const InputProbs> batch) const {
  for (const InputProbs& t : batch) validate_input_probs(net_, t);
  return compute_batch(batch);
}

std::vector<std::vector<double>> SignalProbEngine::compute_batch(
    std::span<const InputProbs> batch) const {
  std::vector<std::vector<double>> out;
  out.reserve(batch.size());
  for (const InputProbs& t : batch) out.push_back(compute(t));
  return out;
}

std::vector<double> SignalProbEngine::signal_probs_perturb(
    std::span<const double> base_inputs,
    std::span<const double> base_node_probs, std::size_t input_index,
    double new_p, PerturbMode mode) const {
  validate_perturb_args(net_, base_inputs, base_node_probs, input_index,
                        new_p);
  return compute_perturb(base_inputs, base_node_probs, input_index, new_p,
                         mode);
}

std::vector<double> SignalProbEngine::compute_perturb(
    std::span<const double> base_inputs,
    std::span<const double> /*base_node_probs*/, std::size_t input_index,
    double new_p, PerturbMode /*mode*/) const {
  InputProbs perturbed(base_inputs.begin(), base_inputs.end());
  perturbed[input_index] = new_p;
  return compute(perturbed);
}


// --- naive ------------------------------------------------------------------

NaiveEngine::NaiveEngine(const Netlist& net)
    : SignalProbEngine(net, "naive"), fanout_cones_(net) {}

std::vector<double> NaiveEngine::compute(
    std::span<const double> input_probs) const {
  return naive_signal_probs(netlist(), input_probs);
}

std::vector<double> NaiveEngine::compute_perturb(
    std::span<const double> /*base_inputs*/,
    std::span<const double> base_node_probs, std::size_t input_index,
    double new_p, PerturbMode /*mode: no selection state, always exact*/) const {
  // Independence propagation is a pure forward sweep, so only the changed
  // input's transitive fanout can move; every other node keeps its base
  // value bit for bit.
  const Netlist& net = netlist();
  std::vector<double> p(base_node_probs.begin(), base_node_probs.end());
  const NodeId root = net.inputs()[input_index];
  p[root] = new_p;
  std::vector<double> ins;
  for (NodeId n : fanout_cones_.of(input_index)) {
    if (n == root) continue;
    const Gate& g = net.gate(n);
    ins.clear();
    for (NodeId f : g.fanin) ins.push_back(p[f]);
    p[n] = eval_gate_prob(g.type, ins);
  }
  return p;
}

// --- exact (BDD) ------------------------------------------------------------

ExactBddEngine::ExactBddEngine(const Netlist& net, std::size_t node_limit)
    : SignalProbEngine(net, "exact-bdd"), node_limit_(node_limit) {}

std::vector<double> ExactBddEngine::compute(
    std::span<const double> input_probs) const {
  return exact_signal_probs_bdd(netlist(), input_probs, node_limit_);
}

// --- exact (enumeration) ----------------------------------------------------

ExactEnumEngine::ExactEnumEngine(const Netlist& net)
    : SignalProbEngine(net, "exact-enum") {}

std::vector<double> ExactEnumEngine::compute(
    std::span<const double> input_probs) const {
  return exact_signal_probs_enum(netlist(), input_probs);
}

// --- Monte-Carlo ------------------------------------------------------------

MonteCarloEngine::MonteCarloEngine(const Netlist& net,
                                   MonteCarloEngineParams params)
    : SignalProbEngine(net, "monte-carlo"), params_(params) {
  if (params_.num_patterns == 0)
    throw std::invalid_argument("monte-carlo engine: num_patterns must be > 0");
}

std::vector<double> MonteCarloEngine::compute(
    std::span<const double> input_probs) const {
  return monte_carlo_signal_probs(netlist(), input_probs,
                                  params_.num_patterns, params_.seed);
}

std::vector<std::vector<double>> MonteCarloEngine::compute_batch(
    std::span<const InputProbs> batch) const {
  // One BlockSimulator for the whole batch: its per-node value arrays are
  // netlist-sized and would otherwise be reallocated per tuple.
  BlockSimulator sim(netlist());
  std::vector<std::vector<double>> out;
  out.reserve(batch.size());
  for (const InputProbs& t : batch)
    out.push_back(
        monte_carlo_signal_probs(sim, t, params_.num_patterns, params_.seed));
  return out;
}

// --- PROTEST ----------------------------------------------------------------

ProtestEngine::ProtestEngine(const Netlist& net, ProtestParams params)
    : SignalProbEngine(net, "protest"), estimator_(net, params) {}

std::vector<double> ProtestEngine::compute(
    std::span<const double> input_probs) const {
  return estimator_.signal_probs(input_probs);
}

std::vector<std::vector<double>> ProtestEngine::compute_batch(
    std::span<const InputProbs> batch) const {
  return estimator_.signal_probs_batch(batch);
}

std::vector<double> ProtestEngine::compute_perturb(
    std::span<const double> base_inputs,
    std::span<const double> base_node_probs, std::size_t input_index,
    double new_p, PerturbMode mode) const {
  return estimator_.signal_probs_perturb(base_inputs, base_node_probs,
                                         input_index, new_p, mode);
}

// --- factory / registry -----------------------------------------------------

namespace {

std::map<std::string, EngineFactory>& registry() {
  static std::map<std::string, EngineFactory> r = {
      {"naive",
       [](const Netlist& net, const EngineConfig&) {
         return std::make_unique<NaiveEngine>(net);
       }},
      {"exact-bdd",
       [](const Netlist& net, const EngineConfig& cfg) {
         return std::make_unique<ExactBddEngine>(net, cfg.bdd_node_limit);
       }},
      {"exact-enum",
       [](const Netlist& net, const EngineConfig&) {
         return std::make_unique<ExactEnumEngine>(net);
       }},
      {"monte-carlo",
       [](const Netlist& net, const EngineConfig& cfg) {
         return std::make_unique<MonteCarloEngine>(net, cfg.monte_carlo);
       }},
      {"protest",
       [](const Netlist& net, const EngineConfig& cfg) {
         return std::make_unique<ProtestEngine>(net, cfg.protest);
       }},
  };
  return r;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

std::unique_ptr<SignalProbEngine> make_engine(const std::string& name,
                                              const Netlist& net,
                                              const EngineConfig& config) {
  EngineFactory factory;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(name);
    if (it != registry().end()) factory = it->second;
  }
  if (!factory) {
    std::string msg = "unknown signal-probability engine '" + name +
                      "' (registered engines:";
    for (const std::string& n : engine_names()) msg += " " + n;
    throw std::invalid_argument(msg + ")");
  }
  return factory(net, config);
}

std::vector<std::string> engine_names() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

void register_engine(const std::string& name, EngineFactory factory) {
  if (name.empty() || !factory)
    throw std::invalid_argument("register_engine: empty name or factory");
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = std::move(factory);
}

}  // namespace protest
