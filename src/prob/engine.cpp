#include "prob/engine.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "netlist/cone.hpp"
#include "prob/exact.hpp"
#include "prob/monte_carlo.hpp"
#include "prob/naive.hpp"
#include "sim/logic_sim.hpp"
#include "sim/word_sim.hpp"
#include "util/cancel.hpp"
#include "util/executor.hpp"

namespace protest {

SignalProbEngine::SignalProbEngine(const Netlist& net, std::string name)
    : net_(net), name_(std::move(name)) {
  if (!net.finalized())
    throw std::invalid_argument("signal-probability engine '" + name_ +
                                "': netlist must be finalized (call "
                                "Netlist::finalize() first)");
}

std::vector<double> SignalProbEngine::signal_probs(
    std::span<const double> input_probs) const {
  // Entry checkpoint: a job cancelled before (or between) evaluations
  // never starts another one, whatever the engine type.  The long-running
  // engines add finer-grained checkpoints of their own (the Monte-Carlo
  // shard loop).
  check_cancelled();
  validate_input_probs(net_, input_probs);
  return compute(input_probs);
}

std::vector<std::vector<double>> SignalProbEngine::signal_probs_batch(
    std::span<const InputProbs> batch) const {
  for (const InputProbs& t : batch) validate_input_probs(net_, t);
  return compute_batch(batch);
}

std::vector<std::vector<double>> SignalProbEngine::compute_batch(
    std::span<const InputProbs> batch) const {
  std::vector<std::vector<double>> out;
  out.reserve(batch.size());
  for (const InputProbs& t : batch) {
    check_cancelled();  // between tuples: batches stop at a tuple boundary
    out.push_back(compute(t));
  }
  return out;
}

std::vector<double> SignalProbEngine::signal_probs_perturb(
    std::span<const double> base_inputs,
    std::span<const double> base_node_probs, std::size_t input_index,
    double new_p, PerturbMode mode) const {
  check_cancelled();
  validate_perturb_args(net_, base_inputs, base_node_probs, input_index,
                        new_p);
  return compute_perturb(base_inputs, base_node_probs, input_index, new_p,
                         mode);
}

std::vector<double> SignalProbEngine::compute_perturb(
    std::span<const double> base_inputs,
    std::span<const double> /*base_node_probs*/, std::size_t input_index,
    double new_p, PerturbMode /*mode*/) const {
  InputProbs perturbed(base_inputs.begin(), base_inputs.end());
  perturbed[input_index] = new_p;
  return compute(perturbed);
}


// --- naive ------------------------------------------------------------------

NaiveEngine::NaiveEngine(const Netlist& net)
    : SignalProbEngine(net, "naive"), fanout_cones_(net) {}

std::unique_ptr<SignalProbEngine> NaiveEngine::clone() const {
  return std::make_unique<NaiveEngine>(netlist());
}

std::vector<double> NaiveEngine::compute(
    std::span<const double> input_probs) const {
  return naive_signal_probs(netlist(), input_probs);
}

std::vector<double> NaiveEngine::compute_perturb(
    std::span<const double> /*base_inputs*/,
    std::span<const double> base_node_probs, std::size_t input_index,
    double new_p, PerturbMode /*mode: no selection state, always exact*/) const {
  // Independence propagation is a pure forward sweep, so only the changed
  // input's transitive fanout can move; every other node keeps its base
  // value bit for bit.
  const Netlist& net = netlist();
  std::vector<double> p(base_node_probs.begin(), base_node_probs.end());
  const NodeId root = net.inputs()[input_index];
  p[root] = new_p;
  std::vector<double> ins;
  for (NodeId n : fanout_cones_.of(input_index)) {
    if (n == root) continue;
    const Gate& g = net.gate(n);
    ins.clear();
    for (NodeId f : g.fanin) ins.push_back(p[f]);
    p[n] = eval_gate_prob(g.type, ins);
  }
  return p;
}

// --- exact (BDD) ------------------------------------------------------------

ExactBddEngine::ExactBddEngine(const Netlist& net, std::size_t node_limit)
    : SignalProbEngine(net, "exact-bdd"), node_limit_(node_limit) {}

std::unique_ptr<SignalProbEngine> ExactBddEngine::clone() const {
  return std::make_unique<ExactBddEngine>(netlist(), node_limit_);
}

std::vector<double> ExactBddEngine::compute(
    std::span<const double> input_probs) const {
  return exact_signal_probs_bdd(netlist(), input_probs, node_limit_);
}

// --- exact (enumeration) ----------------------------------------------------

ExactEnumEngine::ExactEnumEngine(const Netlist& net)
    : SignalProbEngine(net, "exact-enum") {}

std::unique_ptr<SignalProbEngine> ExactEnumEngine::clone() const {
  return std::make_unique<ExactEnumEngine>(netlist());
}

std::vector<double> ExactEnumEngine::compute(
    std::span<const double> input_probs) const {
  return exact_signal_probs_enum(netlist(), input_probs);
}

// --- Monte-Carlo ------------------------------------------------------------

/// Per-worker Monte-Carlo scratch, keyed by the pool's stable worker
/// index: the word simulator's netlist-sized value store (its input word
/// slots double as the pattern buffer) and the shard one-counts live
/// across shards AND across batch tuples, so the hot loop never
/// allocates.
struct MonteCarloEngine::Worker {
  Worker(const Netlist& net, std::size_t words)
      : sim(net, words), ones(net.size(), 0) {}
  WordSimulator sim;
  std::vector<std::size_t> ones;
};

MonteCarloEngine::MonteCarloEngine(const Netlist& net,
                                   MonteCarloEngineParams params)
    : SignalProbEngine(net, "monte-carlo"), params_(params) {
  if (params_.num_patterns == 0)
    throw std::invalid_argument("monte-carlo engine: num_patterns must be > 0");
  if (params_.words_per_block < 1 ||
      params_.words_per_block > WordSimulator::kMaxWordsPerBlock)
    throw std::invalid_argument(
        "monte-carlo engine: words_per_block must be in [1, 64]");
}

MonteCarloEngine::~MonteCarloEngine() = default;

std::unique_ptr<SignalProbEngine> MonteCarloEngine::clone() const {
  return std::make_unique<MonteCarloEngine>(netlist(), params_);
}

bool MonteCarloEngine::internally_parallel() const {
  return params_.parallel.resolved() > 1;
}

std::vector<double> MonteCarloEngine::run_tuple(
    std::span<const double> input_probs) const {
  const Netlist& net = netlist();
  const std::size_t num_patterns = params_.num_patterns;
  const std::size_t shards = monte_carlo_num_shards(num_patterns);
  const std::vector<std::uint64_t> thresholds =
      monte_carlo_thresholds(input_probs);

  if (!exec_) exec_ = make_executor(params_.parallel);
  workers_.resize(exec_->num_workers());
  for (const std::unique_ptr<Worker>& w : workers_)
    if (w) std::fill(w->ones.begin(), w->ones.end(), std::size_t{0});

  // Shard contents depend only on (seed, shard index), never on which
  // worker runs them, and the integer one-counts merge exactly — so the
  // result is bit-identical for any thread count.
  exec_->parallel_for(shards, [&](std::size_t shard, unsigned w) {
    if (!workers_[w])
      workers_[w] = std::make_unique<Worker>(net, params_.words_per_block);
    Worker& wk = *workers_[w];
    monte_carlo_accumulate_shard(wk.sim, thresholds, shard, num_patterns,
                                 params_.seed, wk.ones);
  });

  std::vector<std::size_t> ones(net.size(), 0);
  for (const std::unique_ptr<Worker>& w : workers_)
    if (w)
      for (NodeId n = 0; n < net.size(); ++n) ones[n] += w->ones[n];
  std::vector<double> p(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    p[n] = static_cast<double>(ones[n]) / static_cast<double>(num_patterns);
  return p;
}

std::vector<double> MonteCarloEngine::compute(
    std::span<const double> input_probs) const {
  return run_tuple(input_probs);
}

std::vector<std::vector<double>> MonteCarloEngine::compute_batch(
    std::span<const InputProbs> batch) const {
  // run_tuple keeps the pool and the per-worker simulators alive across
  // tuples; only the thresholds and one-counts are per-tuple.
  std::vector<std::vector<double>> out;
  out.reserve(batch.size());
  for (const InputProbs& t : batch) out.push_back(run_tuple(t));
  return out;
}

// --- PROTEST ----------------------------------------------------------------

ProtestEngine::ProtestEngine(const Netlist& net, ProtestParams params)
    : SignalProbEngine(net, "protest"), estimator_(net, params) {}

std::unique_ptr<SignalProbEngine> ProtestEngine::clone() const {
  return std::make_unique<ProtestEngine>(netlist(), estimator_.params());
}

std::vector<double> ProtestEngine::compute(
    std::span<const double> input_probs) const {
  return estimator_.signal_probs(input_probs);
}

std::vector<std::vector<double>> ProtestEngine::compute_batch(
    std::span<const InputProbs> batch) const {
  return estimator_.signal_probs_batch(batch);
}

std::vector<double> ProtestEngine::compute_perturb(
    std::span<const double> base_inputs,
    std::span<const double> base_node_probs, std::size_t input_index,
    double new_p, PerturbMode mode) const {
  return estimator_.signal_probs_perturb(base_inputs, base_node_probs,
                                         input_index, new_p, mode);
}

// --- factory / registry -----------------------------------------------------

namespace {

std::map<std::string, EngineFactory>& registry() {
  static std::map<std::string, EngineFactory> r = {
      {"naive",
       [](const Netlist& net, const EngineConfig&) {
         return std::make_unique<NaiveEngine>(net);
       }},
      {"exact-bdd",
       [](const Netlist& net, const EngineConfig& cfg) {
         return std::make_unique<ExactBddEngine>(net, cfg.bdd_node_limit);
       }},
      {"exact-enum",
       [](const Netlist& net, const EngineConfig&) {
         return std::make_unique<ExactEnumEngine>(net);
       }},
      {"monte-carlo",
       [](const Netlist& net, const EngineConfig& cfg) {
         return std::make_unique<MonteCarloEngine>(net, cfg.monte_carlo);
       }},
      {"protest",
       [](const Netlist& net, const EngineConfig& cfg) {
         return std::make_unique<ProtestEngine>(net, cfg.protest);
       }},
  };
  return r;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

std::unique_ptr<SignalProbEngine> make_engine(const std::string& name,
                                              const Netlist& net,
                                              const EngineConfig& config) {
  EngineFactory factory;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(name);
    if (it != registry().end()) factory = it->second;
  }
  if (!factory) {
    std::string msg = "unknown signal-probability engine '" + name +
                      "' (registered engines:";
    for (const std::string& n : engine_names()) msg += " " + n;
    throw std::invalid_argument(msg + ")");
  }
  return factory(net, config);
}

std::vector<std::string> engine_names() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

void register_engine(const std::string& name, EngineFactory factory) {
  if (name.empty() || !factory)
    throw std::invalid_argument("register_engine: empty name or factory");
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = std::move(factory);
}

}  // namespace protest
