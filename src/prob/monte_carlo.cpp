#include "prob/monte_carlo.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "prob/naive.hpp"
#include "sim/logic_sim.hpp"
#include "sim/word_sim.hpp"
#include "util/cancel.hpp"

namespace protest {
namespace {

/// splitmix64 [Steele et al.], the counter-based generator behind the
/// shard streams: trivially seekable, no warm-up, passes BigCrush.
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ull;

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t splitmix64_next(std::uint64_t& state) {
  return mix64(state += kGamma);
}

}  // namespace

std::size_t monte_carlo_num_shards(std::size_t num_patterns) {
  return (num_patterns + kMonteCarloShardPatterns - 1) /
         kMonteCarloShardPatterns;
}

std::uint64_t monte_carlo_stream_seed(std::uint64_t seed,
                                      std::uint64_t shard_index) {
  // Mixing (seed, shard) through the finalizer scatters the shard streams
  // pseudo-randomly over the 2^64 splitmix state circle; a shard consumes
  // ~2^19 states, so window overlaps are birthday-negligible.
  return mix64(seed ^ ((shard_index + 1) * kGamma));
}

std::vector<std::uint64_t> monte_carlo_thresholds(
    std::span<const double> input_probs) {
  std::vector<std::uint64_t> thresholds(input_probs.size());
  for (std::size_t i = 0; i < input_probs.size(); ++i) {
    // Guard here, not just at the engine layer: a negative double to
    // unsigned is UB, and the pre-shard code threw on out-of-range
    // probabilities from every entry point (PatternSet::weighted).
    if (!(input_probs[i] >= 0.0 && input_probs[i] <= 1.0))
      throw std::invalid_argument(
          "monte_carlo_thresholds: probability outside [0,1]");
    thresholds[i] = static_cast<std::uint64_t>(input_probs[i] * 4294967296.0);
  }
  return thresholds;
}

void monte_carlo_accumulate_shard(BlockSimulator& sim,
                                  std::span<const std::uint64_t> thresholds,
                                  std::size_t shard_index,
                                  std::size_t num_patterns, std::uint64_t seed,
                                  std::span<std::size_t> ones,
                                  std::vector<std::uint64_t>& word_buf) {
  // The shard boundary is the Monte-Carlo cancellation checkpoint: a
  // cancelled analyze stops before simulating another 8192 patterns, and
  // because a shard either completes or contributes nothing, the partial
  // one-counts are simply discarded by the unwind.
  check_cancelled();
  const std::size_t begin = shard_index * kMonteCarloShardPatterns;
  const std::size_t count =
      std::min(kMonteCarloShardPatterns, num_patterns - begin);
  const std::size_t num_blocks = (count + 63) / 64;
  const std::size_t num_inputs = thresholds.size();
  const std::size_t num_nodes = ones.size();
  word_buf.resize(num_inputs);

  std::uint64_t state = monte_carlo_stream_seed(seed, shard_index);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const std::uint64_t threshold = thresholds[i];
      std::uint64_t w = 0;
      for (int bit = 0; bit < 64; ++bit)
        if ((splitmix64_next(state) >> 32) < threshold)
          w |= std::uint64_t{1} << bit;
      word_buf[i] = w;
    }
    const std::vector<std::uint64_t>& vals = sim.run_words(word_buf);
    const std::size_t rem = count - b * 64;
    const std::uint64_t mask =
        rem >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
    for (std::size_t n = 0; n < num_nodes; ++n)
      ones[n] += static_cast<std::size_t>(std::popcount(vals[n] & mask));
  }
}

void monte_carlo_accumulate_shard(WordSimulator& sim,
                                  std::span<const std::uint64_t> thresholds,
                                  std::size_t shard_index,
                                  std::size_t num_patterns, std::uint64_t seed,
                                  std::span<std::size_t> ones) {
  check_cancelled();
  const std::size_t begin = shard_index * kMonteCarloShardPatterns;
  const std::size_t count =
      std::min(kMonteCarloShardPatterns, num_patterns - begin);
  const std::size_t num_blocks = (count + 63) / 64;
  const std::size_t num_inputs = thresholds.size();
  const std::size_t num_nodes = ones.size();
  const std::size_t W = sim.words_per_block();

  std::uint64_t state = monte_carlo_stream_seed(seed, shard_index);
  for (std::size_t b = 0; b < num_blocks; b += W) {
    const std::size_t wb = std::min(W, num_blocks - b);
    // Stream contract order: per block, per input, 64 per-bit draws.
    // Words beyond wb keep stale values; their node results are never
    // accumulated.
    for (std::size_t w = 0; w < wb; ++w) {
      for (std::size_t i = 0; i < num_inputs; ++i) {
        const std::uint64_t threshold = thresholds[i];
        std::uint64_t word = 0;
        for (int bit = 0; bit < 64; ++bit)
          if ((splitmix64_next(state) >> 32) < threshold)
            word |= std::uint64_t{1} << bit;
        sim.input_words(i)[w] = word;
      }
    }
    sim.run();
    const std::vector<std::uint64_t>& vals = sim.values();
    // Only the last block of the shard can be partial.
    const std::size_t rem = count - (b + wb - 1) * 64;
    const std::uint64_t last_mask =
        rem >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
    for (std::size_t n = 0; n < num_nodes; ++n) {
      const std::uint64_t* v = vals.data() + n * W;
      std::size_t acc = 0;
      for (std::size_t w = 0; w + 1 < wb; ++w)
        acc += static_cast<std::size_t>(std::popcount(v[w]));
      acc += static_cast<std::size_t>(std::popcount(v[wb - 1] & last_mask));
      ones[n] += acc;
    }
  }
}

std::vector<double> monte_carlo_signal_probs(const Netlist& net,
                                             std::span<const double> input_probs,
                                             std::size_t num_patterns,
                                             std::uint64_t seed) {
  validate_input_probs(net, input_probs);
  const std::vector<std::uint64_t> thresholds =
      monte_carlo_thresholds(input_probs);
  WordSimulator sim(net);
  std::vector<std::size_t> ones(net.size(), 0);
  const std::size_t shards = monte_carlo_num_shards(num_patterns);
  for (std::size_t s = 0; s < shards; ++s)
    monte_carlo_accumulate_shard(sim, thresholds, s, num_patterns, seed, ones);
  std::vector<double> p(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    p[n] = static_cast<double>(ones[n]) / static_cast<double>(num_patterns);
  return p;
}

std::vector<double> monte_carlo_signal_probs(BlockSimulator& sim,
                                             std::span<const double> input_probs,
                                             std::size_t num_patterns,
                                             std::uint64_t seed) {
  const Netlist& net = sim.netlist();
  const std::vector<std::uint64_t> thresholds =
      monte_carlo_thresholds(input_probs);
  std::vector<std::size_t> ones(net.size(), 0);
  std::vector<std::uint64_t> word_buf;
  const std::size_t shards = monte_carlo_num_shards(num_patterns);
  for (std::size_t s = 0; s < shards; ++s)
    monte_carlo_accumulate_shard(sim, thresholds, s, num_patterns, seed, ones,
                                 word_buf);
  std::vector<double> p(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    p[n] = static_cast<double>(ones[n]) / static_cast<double>(num_patterns);
  return p;
}

}  // namespace protest
