#include "prob/monte_carlo.hpp"

#include "prob/naive.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"

namespace protest {

std::vector<double> monte_carlo_signal_probs(const Netlist& net,
                                             std::span<const double> input_probs,
                                             std::size_t num_patterns,
                                             std::uint64_t seed) {
  validate_input_probs(net, input_probs);
  BlockSimulator sim(net);
  return monte_carlo_signal_probs(sim, input_probs, num_patterns, seed);
}

std::vector<double> monte_carlo_signal_probs(BlockSimulator& sim,
                                             std::span<const double> input_probs,
                                             std::size_t num_patterns,
                                             std::uint64_t seed) {
  const Netlist& net = sim.netlist();
  const PatternSet ps = PatternSet::weighted(input_probs, num_patterns, seed);
  const std::vector<std::size_t> ones = count_ones(sim, ps);
  std::vector<double> p(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    p[n] = static_cast<double>(ones[n]) / static_cast<double>(num_patterns);
  return p;
}

}  // namespace protest
