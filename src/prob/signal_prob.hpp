// Common vocabulary for signal-probability computation.  All engines map a
// tuple of primary-input probabilities <p_i | i in I> to per-node signal
// probabilities p_k = P(node k evaluates to 1) — the quantity of sect. 2.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

/// One probability per primary input, in netlist input order.
using InputProbs = std::vector<double>;

/// Fidelity of an incremental single-coordinate re-evaluation.
enum class PerturbMode {
  /// Indistinguishable from a from-scratch evaluation of the perturbed
  /// tuple (engines with tuple-dependent internal selections redo them).
  Exact,
  /// Engines with per-gate conditioning selections reuse the ones chosen
  /// at the base tuple — the same approximation (and bit-for-bit the same
  /// numbers) as batched evaluation anchored at the base, at a fraction of
  /// the cost.  Engines without such state treat this as Exact.
  FrozenSelection,
};

/// The conventional tuple: every input stimulated with P(1) = p (paper
/// sect. 5 uses p = 0.5 for the "not optimized" columns).
InputProbs uniform_input_probs(const Netlist& net, double p = 0.5);

/// Throws std::invalid_argument unless probs matches the input count and
/// every entry lies in [0,1].
void validate_input_probs(const Netlist& net, std::span<const double> probs);

/// The perturb-argument contract shared by every incremental entry point
/// (engine and estimator): valid base tuple, netlist-sized base node
/// probabilities, in-range input index, probability in [0,1].  Throws
/// std::invalid_argument.
void validate_perturb_args(const Netlist& net,
                           std::span<const double> base_inputs,
                           std::span<const double> base_node_probs,
                           std::size_t input_index, double new_p);

}  // namespace protest
