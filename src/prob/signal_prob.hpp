// Common vocabulary for signal-probability computation.  All engines map a
// tuple of primary-input probabilities <p_i | i in I> to per-node signal
// probabilities p_k = P(node k evaluates to 1) — the quantity of sect. 2.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

/// One probability per primary input, in netlist input order.
using InputProbs = std::vector<double>;

/// The conventional tuple: every input stimulated with P(1) = p (paper
/// sect. 5 uses p = 0.5 for the "not optimized" columns).
InputProbs uniform_input_probs(const Netlist& net, double p = 0.5);

/// Throws std::invalid_argument unless probs matches the input count and
/// every entry lies in [0,1].
void validate_input_probs(const Netlist& net, std::span<const double> probs);

}  // namespace protest
