#include "prob/parallel_eval.hpp"

#include "util/cancel.hpp"

namespace protest {

ParallelBatchEvaluator::ParallelBatchEvaluator(
    const SignalProbEngine& prototype, ParallelConfig parallel)
    : prototype_(prototype),
      exec_(make_executor(parallel)),
      engines_(exec_->num_workers()) {}

ParallelBatchEvaluator::ParallelBatchEvaluator(const Netlist& net,
                                               const std::string& engine_name,
                                               const EngineConfig& config,
                                               ParallelConfig parallel)
    : owned_prototype_(make_engine(engine_name, net, config)),
      prototype_(*owned_prototype_),
      exec_(make_executor(parallel)),
      engines_(exec_->num_workers()) {}

ParallelBatchEvaluator::~ParallelBatchEvaluator() = default;

unsigned ParallelBatchEvaluator::num_workers() const {
  return exec_->num_workers();
}

const SignalProbEngine& ParallelBatchEvaluator::worker_engine(
    unsigned worker) const {
  if (!engines_[worker]) engines_[worker] = prototype_.clone();
  return *engines_[worker];
}

void ParallelBatchEvaluator::for_each_task(
    std::size_t num_tasks,
    const std::function<void(std::size_t, const SignalProbEngine&)>& fn)
    const {
  exec_->parallel_for(num_tasks, [&](std::size_t task, unsigned worker) {
    check_cancelled();  // task boundary: sweeps stop within one candidate
    fn(task, worker_engine(worker));
  });
}

std::vector<std::vector<double>> ParallelBatchEvaluator::signal_probs_batch(
    std::span<const InputProbs> batch) const {
  for (const InputProbs& t : batch) validate_input_probs(netlist(), t);
  std::vector<std::vector<double>> out(batch.size());
  for_each_task(batch.size(),
                [&](std::size_t t, const SignalProbEngine& engine) {
                  out[t] = engine.signal_probs(batch[t]);
                });
  return out;
}

std::vector<std::vector<double>> ParallelBatchEvaluator::perturb_sweep(
    std::span<const double> base_inputs,
    std::span<const double> base_node_probs, std::size_t input_index,
    std::span<const double> values, PerturbMode mode) const {
  for (const double v : values)
    validate_perturb_args(netlist(), base_inputs, base_node_probs, input_index,
                          v);
  std::vector<std::vector<double>> out(values.size());
  for_each_task(values.size(),
                [&](std::size_t i, const SignalProbEngine& engine) {
                  out[i] = engine.signal_probs_perturb(
                      base_inputs, base_node_probs, input_index, values[i],
                      mode);
                });
  return out;
}

}  // namespace protest
