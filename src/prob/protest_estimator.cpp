#include "prob/protest_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "netlist/cone.hpp"
#include "prob/naive.hpp"

namespace protest {
namespace {

/// Re-propagates probabilities inside a cone with some nodes pinned to
/// constants.  Reusable scratch state with epoch-based invalidation.
class ConeProp {
 public:
  explicit ConeProp(const Netlist& net)
      : net_(net),
        cond_(net.size(), 0.0),
        cond_epoch_(net.size(), 0),
        pin_(net.size(), 0.0),
        pin_epoch_(net.size(), 0) {}

  /// cone must be ascending (topological).  pins = (node, value 0/1).
  /// base = unconditioned probabilities.  After the call, prob(n) returns
  /// the conditional probability for cone members and base otherwise.
  void run(std::span<const NodeId> cone,
           std::span<const std::pair<NodeId, double>> pins,
           std::span<const double> base) {
    ++epoch_;
    for (const auto& [n, v] : pins) {
      pin_[n] = v;
      pin_epoch_[n] = epoch_;
    }
    std::vector<double>& ins = ins_;
    for (NodeId m : cone) {
      double value;
      if (pin_epoch_[m] == epoch_) {
        value = pin_[m];
      } else {
        const Gate& g = net_.gate(m);
        if (g.type == GateType::Input) {
          value = base[m];
        } else {
          ins.clear();
          for (NodeId f : g.fanin)
            ins.push_back(cond_epoch_[f] == epoch_ ? cond_[f] : base[f]);
          value = eval_gate_prob(g.type, ins);
        }
      }
      cond_[m] = value;
      cond_epoch_[m] = epoch_;
    }
  }

  double prob(NodeId n, std::span<const double> base) const {
    return cond_epoch_[n] == epoch_ ? cond_[n] : base[n];
  }

 private:
  const Netlist& net_;
  std::vector<double> cond_;
  std::vector<std::uint32_t> cond_epoch_;
  std::vector<double> pin_;
  std::vector<std::uint32_t> pin_epoch_;
  std::vector<double> ins_;
  std::uint32_t epoch_ = 0;
};

/// Per-gate structural data: everything about case 4 of sect. 2 that does
/// not depend on the input tuple.  Computed lazily once per estimator and
/// reused for every tuple, batch, and incremental perturbation.
///
/// Retaining every conditioned gate's cone puts peak memory at
/// O(sum of maxlist-bounded cone sizes) for the estimator's lifetime —
/// a few MB on the largest shipped circuits — where the pre-batching
/// code streamed one cone at a time.  That retention is what makes
/// cross-tuple and cross-call reuse possible.
struct GatePlan {
  NodeId node = kNoNode;
  std::vector<NodeId> candidates;  ///< trimmed candidate joining points V
  std::vector<NodeId> cone;        ///< bounded TFI union of the fanins
  std::vector<NodeId> w;           ///< selected conditioning set (select pass)
};

}  // namespace

/// One evaluation context: the structural plan plus all per-tuple scratch.
/// run(select = true) scores the candidates with the covariance criterion
/// and records W per gate; run(select = false) reuses the recorded W and
/// only re-propagates the conditionals of formula (2); run_perturb()
/// re-evaluates (with fresh selection) only the fanout cone of one
/// changed input.
class ProtestEstimator::Evaluator {
 public:
  Evaluator(const Netlist& net, const ProtestParams& params)
      : net_(net),
        params_(params),
        prop_(net),
        plan_index_(net.size(), -1),
        fanout_cones_(net) {
    build_plan();
  }

  std::vector<double> run(std::span<const double> input_probs, bool select) {
    std::vector<double> p(net_.size(), 0.0);
    const auto inputs = net_.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i)
      p[inputs[i]] = input_probs[i];

    if (select) {
      stats_.gates_conditioned = 0;
      stats_.max_w = 0;
      select_anchor_.assign(input_probs.begin(), input_probs.end());
    }

    for (NodeId n = 0; n < net_.size(); ++n) {
      if (net_.gate(n).type == GateType::Input) continue;
      p[n] = eval_node(n, p, select, select ? &stats_ : nullptr);
    }
    return p;
  }

  /// base must be the vector run()/run_perturb() produced for
  /// base_inputs.  Only the changed input's transitive fanout is
  /// re-evaluated: any other gate's bounded fanin cone lies entirely
  /// outside that fanout (a cone member downstream of the input would put
  /// the gate downstream too), so its value is a function of unchanged
  /// numbers and is kept verbatim.
  ///
  /// Exact mode re-selects per touched gate, exactly as a fresh full run
  /// would — the result matches run(perturbed tuple, select=true) bit for
  /// bit.  FrozenSelection keeps the conditioning sets selected at
  /// base_inputs (re-anchoring them with one select run if the current
  /// selection state belongs to some other tuple) — the result matches
  /// what a batch anchored at base_inputs computes for the perturbed
  /// tuple, with eval-only cost confined to the fanout cone.
  std::vector<double> run_perturb(std::span<const double> base_inputs,
                                  std::span<const double> base,
                                  std::size_t input_index, double new_p,
                                  PerturbMode mode) {
    const bool select = mode == PerturbMode::Exact;
    if (!select && !std::equal(select_anchor_.begin(), select_anchor_.end(),
                               base_inputs.begin(), base_inputs.end()))
      run(base_inputs, /*select=*/true);  // re-anchor the selections
    if (select) select_anchor_.clear();  // per-gate sets become mixed-tuple
    std::vector<double> p(base.begin(), base.end());
    const NodeId root = net_.inputs()[input_index];
    p[root] = new_p;
    for (NodeId n : fanout_cones_.of(input_index)) {
      if (n == root) continue;
      p[n] = eval_node(n, p, select, nullptr);
    }
    return p;
  }

  const ProtestStats& stats() const { return stats_; }

 private:
  void build_plan() {
    ConeWorkspace ws(net_);
    for (NodeId n = 0; n < net_.size(); ++n) {
      const Gate& g = net_.gate(n);
      if (g.type == GateType::Input || g.fanin.size() < 2) continue;

      // Case 4: look for joining points V within MAXLIST levels.  The
      // candidate set also contains intra-cone reconvergence stems
      // (V(a,a)): pinning them makes the in-cone conditionals P(a_i | A_v)
      // of formula (2) sharp (see ConeWorkspace::conditioning_points).
      ws.compute(g.fanin, params_.maxlist);
      std::vector<NodeId> v = ws.conditioning_points(n);
      if (v.empty()) continue;
      stats_.total_joining_points += v.size();

      // Keep the candidates closest to the gate (strongest correlations
      // are near the reconvergence) when V is oversized.
      if (v.size() > params_.max_candidates) {
        std::sort(v.begin(), v.end(), [&](NodeId a, NodeId b) {
          return net_.level(a) > net_.level(b);
        });
        v.resize(params_.max_candidates);
        std::sort(v.begin(), v.end());
      }
      plan_index_[n] = static_cast<std::int32_t>(plans_.size());
      plans_.push_back({n, std::move(v), ws.cone(), {}});
    }
  }

  /// Evaluates one non-input node against the current probabilities,
  /// optionally re-selecting its conditioning set (and accounting it into
  /// `stats` when given).
  double eval_node(NodeId n, std::span<const double> p, bool select,
                   ProtestStats* stats) {
    const Gate& g = net_.gate(n);
    // Cases 1-3 of sect. 2: no conditioning possible or necessary.
    auto naive_value = [&] {
      ins_.clear();
      for (NodeId f : g.fanin) ins_.push_back(p[f]);
      return eval_gate_prob(g.type, ins_);
    };
    const std::int32_t idx = plan_index_[n];
    if (idx < 0) return naive_value();
    GatePlan& plan = plans_[static_cast<std::size_t>(idx)];
    if (select) select_w(plan, p);
    if (plan.w.empty()) return naive_value();
    if (stats) {
      ++stats->gates_conditioned;
      stats->max_w = std::max(stats->max_w, plan.w.size());
    }
    return conditioned_prob(plan, g, p);
  }

  /// Scores the candidates with the covariance criterion — maximize
  /// p_x (1-p_x) * max_{i<=j} |Delta(a_i,x) Delta(a_j,x)| with Delta from
  /// one-point conditionals — and records the top MAXVERS as plan.w.
  void select_w(GatePlan& plan, std::span<const double> p) {
    const Gate& g = net_.gate(plan.node);
    plan.w.clear();
    scored_.clear();
    delta_.resize(g.fanin.size());
    for (NodeId x : plan.candidates) {
      const double px = p[x];
      const double sx2 = px * (1.0 - px);
      if (sx2 <= params_.min_score) continue;
      pins_.assign(1, {x, 1.0});
      prop_.run(plan.cone, pins_, p);
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        delta_[i] = prop_.prob(g.fanin[i], p);
      pins_.assign(1, {x, 0.0});
      prop_.run(plan.cone, pins_, p);
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        delta_[i] -= prop_.prob(g.fanin[i], p);
      double best = 0.0;
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        for (std::size_t j = i; j < g.fanin.size(); ++j)
          best = std::max(best, std::abs(delta_[i] * delta_[j]));
      const double score = sx2 * best;
      if (score > params_.min_score) scored_.emplace_back(score, x);
    }
    if (scored_.empty()) return;
    std::sort(scored_.begin(), scored_.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    for (std::size_t i = 0;
         i < scored_.size() && plan.w.size() < params_.maxvers; ++i)
      plan.w.push_back(scored_[i].second);
    std::sort(plan.w.begin(), plan.w.end());  // topological, for the chain
  }

  /// Formula (2): enumerate assignments of W depth-first so that each
  /// branching weight is the conditional P(w_j | w_1..w_{j-1}) read off
  /// the re-propagated cone — sharper than the independence product when
  /// joining points feed each other.
  double conditioned_prob(const GatePlan& plan, const Gate& g,
                          std::span<const double> p) {
    const std::vector<NodeId>& w = plan.w;
    double acc = 0.0;
    ins_.resize(g.fanin.size());
    auto rec = [&](auto&& self, std::size_t j, double weight) -> void {
      if (weight <= 0.0) return;
      pins_.resize(j);
      prop_.run(plan.cone, pins_, p);
      if (j == w.size()) {
        for (std::size_t i = 0; i < g.fanin.size(); ++i)
          ins_[i] = prop_.prob(g.fanin[i], p);
        acc += weight * eval_gate_prob(g.type, ins_);
        return;
      }
      const double q = std::clamp(prop_.prob(w[j], p), 0.0, 1.0);
      pins_.emplace_back(w[j], 1.0);
      self(self, j + 1, weight * q);
      pins_.resize(j);
      pins_.emplace_back(w[j], 0.0);
      self(self, j + 1, weight * (1.0 - q));
      pins_.resize(j);
    };
    pins_.clear();
    rec(rec, 0, 1.0);
    return std::clamp(acc, 0.0, 1.0);
  }

  const Netlist& net_;
  const ProtestParams params_;  ///< by value: survives estimator moves
  ConeProp prop_;
  std::vector<std::int32_t> plan_index_;  ///< node -> plans_ index or -1
  std::vector<GatePlan> plans_;
  InputFanoutCones fanout_cones_;  ///< incremental work lists
  /// Input tuple whose select pass chose the current plan W's; empty when
  /// the W's do not all belong to one tuple (after an exact perturb).
  std::vector<double> select_anchor_;
  ProtestStats stats_;

  // per-tuple scratch
  std::vector<double> ins_;
  std::vector<double> delta_;
  std::vector<std::pair<NodeId, double>> pins_;
  std::vector<std::pair<double, NodeId>> scored_;
};

ProtestEstimator::ProtestEstimator(const Netlist& net, ProtestParams params)
    : net_(net), params_(params) {
  if (!net.finalized())
    throw std::logic_error("ProtestEstimator: netlist must be finalized");
}

ProtestEstimator::~ProtestEstimator() = default;
ProtestEstimator::ProtestEstimator(ProtestEstimator&&) noexcept = default;

ProtestEstimator::Evaluator& ProtestEstimator::evaluator() const {
  if (!evaluator_)
    evaluator_ = std::make_unique<Evaluator>(net_, params_);
  return *evaluator_;
}

std::vector<double> ProtestEstimator::signal_probs(
    std::span<const double> input_probs) const {
  validate_input_probs(net_, input_probs);
  Evaluator& ev = evaluator();
  std::vector<double> p = ev.run(input_probs, /*select=*/true);
  stats_ = ev.stats();
  return p;
}

std::vector<double> ProtestEstimator::signal_probs_perturb(
    std::span<const double> base_inputs,
    std::span<const double> base_node_probs, std::size_t input_index,
    double new_p, PerturbMode mode) const {
  // Shared contract with the engine wrapper; the repeat when called
  // through ProtestEngine is O(inputs) and deliberate (direct estimator
  // callers get the same checks).
  validate_perturb_args(net_, base_inputs, base_node_probs, input_index,
                        new_p);
  return evaluator().run_perturb(base_inputs, base_node_probs, input_index,
                                 new_p, mode);
}

std::vector<std::vector<double>> ProtestEstimator::signal_probs_batch(
    std::span<const InputProbs> batch) const {
  for (const InputProbs& t : batch) validate_input_probs(net_, t);
  std::vector<std::vector<double>> out;
  out.reserve(batch.size());
  if (batch.empty()) return out;

  Evaluator& ev = evaluator();
  out.push_back(ev.run(batch[0], /*select=*/true));
  for (std::size_t t = 1; t < batch.size(); ++t)
    out.push_back(ev.run(batch[t], /*select=*/false));
  stats_ = ev.stats();
  return out;
}

}  // namespace protest
