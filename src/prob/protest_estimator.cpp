#include "prob/protest_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netlist/cone.hpp"
#include "prob/naive.hpp"

namespace protest {
namespace {

/// Re-propagates probabilities inside a cone with some nodes pinned to
/// constants.  Reusable scratch state with epoch-based invalidation.
class ConeProp {
 public:
  explicit ConeProp(const Netlist& net)
      : net_(net),
        cond_(net.size(), 0.0),
        cond_epoch_(net.size(), 0),
        pin_(net.size(), 0.0),
        pin_epoch_(net.size(), 0) {}

  /// cone must be ascending (topological).  pins = (node, value 0/1).
  /// base = unconditioned probabilities.  After the call, prob(n) returns
  /// the conditional probability for cone members and base otherwise.
  void run(std::span<const NodeId> cone,
           std::span<const std::pair<NodeId, double>> pins,
           std::span<const double> base) {
    ++epoch_;
    for (const auto& [n, v] : pins) {
      pin_[n] = v;
      pin_epoch_[n] = epoch_;
    }
    std::vector<double>& ins = ins_;
    for (NodeId m : cone) {
      double value;
      if (pin_epoch_[m] == epoch_) {
        value = pin_[m];
      } else {
        const Gate& g = net_.gate(m);
        if (g.type == GateType::Input) {
          value = base[m];
        } else {
          ins.clear();
          for (NodeId f : g.fanin)
            ins.push_back(cond_epoch_[f] == epoch_ ? cond_[f] : base[f]);
          value = eval_gate_prob(g.type, ins);
        }
      }
      cond_[m] = value;
      cond_epoch_[m] = epoch_;
    }
  }

  double prob(NodeId n, std::span<const double> base) const {
    return cond_epoch_[n] == epoch_ ? cond_[n] : base[n];
  }

 private:
  const Netlist& net_;
  std::vector<double> cond_;
  std::vector<std::uint32_t> cond_epoch_;
  std::vector<double> pin_;
  std::vector<std::uint32_t> pin_epoch_;
  std::vector<double> ins_;
  std::uint32_t epoch_ = 0;
};

}  // namespace

ProtestEstimator::ProtestEstimator(const Netlist& net, ProtestParams params)
    : net_(net), params_(params) {
  if (!net.finalized())
    throw std::logic_error("ProtestEstimator: netlist must be finalized");
}

std::vector<double> ProtestEstimator::signal_probs(
    std::span<const double> input_probs) const {
  validate_input_probs(net_, input_probs);
  stats_ = {};

  std::vector<double> p(net_.size(), 0.0);
  const auto inputs = net_.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) p[inputs[i]] = input_probs[i];

  ConeProp prop(net_);
  ConeWorkspace ws(net_);
  std::vector<double> ins;
  std::vector<std::pair<NodeId, double>> pins;

  for (NodeId n = 0; n < net_.size(); ++n) {
    const Gate& g = net_.gate(n);
    if (g.type == GateType::Input) continue;

    // Cases 1-3 of sect. 2: no conditioning possible or necessary.
    auto naive_value = [&] {
      ins.clear();
      for (NodeId f : g.fanin) ins.push_back(p[f]);
      return eval_gate_prob(g.type, ins);
    };
    if (g.fanin.size() < 2) {
      p[n] = naive_value();
      continue;
    }

    // Case 4: look for joining points V within MAXLIST levels.  The
    // candidate set also contains intra-cone reconvergence stems (V(a,a)):
    // pinning them makes the in-cone conditionals P(a_i | A_v) of formula
    // (2) sharp (see ConeWorkspace::conditioning_points).
    ws.compute(g.fanin, params_.maxlist);
    std::vector<NodeId> v = ws.conditioning_points(n);
    if (v.empty()) {
      p[n] = naive_value();
      continue;
    }
    stats_.total_joining_points += v.size();

    // The cone that conditioning re-propagates.
    const std::vector<NodeId>& cone = ws.cone();

    // Keep the candidates closest to the gate (strongest correlations are
    // near the reconvergence) when V is oversized.
    if (v.size() > params_.max_candidates) {
      std::sort(v.begin(), v.end(), [&](NodeId a, NodeId b) {
        return net_.level(a) > net_.level(b);
      });
      v.resize(params_.max_candidates);
      std::sort(v.begin(), v.end());
    }

    // Score candidates: p_x (1-p_x) * max_{i != j} |Delta(a_i,x) Delta(a_j,x)|
    // with Delta from one-point conditionals — the covariance criterion.
    std::vector<std::pair<double, NodeId>> scored;
    std::vector<double> delta(g.fanin.size());
    for (NodeId x : v) {
      const double px = p[x];
      const double sx2 = px * (1.0 - px);
      if (sx2 <= params_.min_score) continue;
      pins.assign(1, {x, 1.0});
      prop.run(cone, pins, p);
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        delta[i] = prop.prob(g.fanin[i], p);
      pins.assign(1, {x, 0.0});
      prop.run(cone, pins, p);
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        delta[i] -= prop.prob(g.fanin[i], p);
      double best = 0.0;
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        for (std::size_t j = i; j < g.fanin.size(); ++j)
          best = std::max(best, std::abs(delta[i] * delta[j]));
      const double score = sx2 * best;
      if (score > params_.min_score) scored.emplace_back(score, x);
    }
    if (scored.empty()) {
      p[n] = naive_value();
      continue;
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    std::vector<NodeId> w;
    for (std::size_t i = 0; i < scored.size() && w.size() < params_.maxvers; ++i)
      w.push_back(scored[i].second);
    std::sort(w.begin(), w.end());  // topological order for the weight chain

    ++stats_.gates_conditioned;
    stats_.max_w = std::max(stats_.max_w, w.size());

    // Formula (2): enumerate assignments of W depth-first so that each
    // branching weight is the conditional P(w_j | w_1..w_{j-1}) read off
    // the re-propagated cone — sharper than the independence product when
    // joining points feed each other.
    double acc = 0.0;
    ins.resize(g.fanin.size());
    auto rec = [&](auto&& self, std::size_t j, double weight) -> void {
      if (weight <= 0.0) return;
      pins.resize(j);
      prop.run(cone, pins, p);
      if (j == w.size()) {
        for (std::size_t i = 0; i < g.fanin.size(); ++i)
          ins[i] = prop.prob(g.fanin[i], p);
        acc += weight * eval_gate_prob(g.type, ins);
        return;
      }
      const double q = std::clamp(prop.prob(w[j], p), 0.0, 1.0);
      pins.emplace_back(w[j], 1.0);
      self(self, j + 1, weight * q);
      pins.resize(j);
      pins.emplace_back(w[j], 0.0);
      self(self, j + 1, weight * (1.0 - q));
      pins.resize(j);
    };
    pins.clear();
    rec(rec, 0, 1.0);
    p[n] = std::clamp(acc, 0.0, 1.0);
  }
  return p;
}

}  // namespace protest
