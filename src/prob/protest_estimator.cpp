#include "prob/protest_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "netlist/cone.hpp"
#include "prob/naive.hpp"

namespace protest {
namespace {

/// Re-propagates probabilities inside a cone with some nodes pinned to
/// constants.  Reusable scratch state with epoch-based invalidation.
class ConeProp {
 public:
  explicit ConeProp(const Netlist& net)
      : net_(net),
        cond_(net.size(), 0.0),
        cond_epoch_(net.size(), 0),
        pin_(net.size(), 0.0),
        pin_epoch_(net.size(), 0) {}

  /// cone must be ascending (topological).  pins = (node, value 0/1).
  /// base = unconditioned probabilities.  After the call, prob(n) returns
  /// the conditional probability for cone members and base otherwise.
  void run(std::span<const NodeId> cone,
           std::span<const std::pair<NodeId, double>> pins,
           std::span<const double> base) {
    ++epoch_;
    for (const auto& [n, v] : pins) {
      pin_[n] = v;
      pin_epoch_[n] = epoch_;
    }
    std::vector<double>& ins = ins_;
    for (NodeId m : cone) {
      double value;
      if (pin_epoch_[m] == epoch_) {
        value = pin_[m];
      } else {
        const Gate& g = net_.gate(m);
        if (g.type == GateType::Input) {
          value = base[m];
        } else {
          ins.clear();
          for (NodeId f : g.fanin)
            ins.push_back(cond_epoch_[f] == epoch_ ? cond_[f] : base[f]);
          value = eval_gate_prob(g.type, ins);
        }
      }
      cond_[m] = value;
      cond_epoch_[m] = epoch_;
    }
  }

  double prob(NodeId n, std::span<const double> base) const {
    return cond_epoch_[n] == epoch_ ? cond_[n] : base[n];
  }

 private:
  const Netlist& net_;
  std::vector<double> cond_;
  std::vector<std::uint32_t> cond_epoch_;
  std::vector<double> pin_;
  std::vector<std::uint32_t> pin_epoch_;
  std::vector<double> ins_;
  std::uint32_t epoch_ = 0;
};

/// Per-gate structural data: everything about case 4 of sect. 2 that does
/// not depend on the input tuple.  Computed once per evaluation run (or
/// per batch) and reused for every tuple.
///
/// Retaining every conditioned gate's cone puts peak memory at
/// O(sum of maxlist-bounded cone sizes) for the duration of one call —
/// a few MB on the largest shipped circuits — where the pre-batching
/// code streamed one cone at a time.  That retention is what makes the
/// batch path's cross-tuple reuse possible; a lazy per-gate build for
/// the single-tuple path is listed as a ROADMAP follow-up.
struct GatePlan {
  NodeId node = kNoNode;
  std::vector<NodeId> candidates;  ///< trimmed candidate joining points V
  std::vector<NodeId> cone;        ///< bounded TFI union of the fanins
  std::vector<NodeId> w;           ///< selected conditioning set (select pass)
};

/// One evaluation context: the structural plan plus all per-tuple scratch.
/// run(select = true) scores the candidates with the covariance criterion
/// and records W per gate; run(select = false) reuses the recorded W and
/// only re-propagates the conditionals of formula (2).
class Evaluator {
 public:
  Evaluator(const Netlist& net, const ProtestParams& params)
      : net_(net),
        params_(params),
        prop_(net),
        plan_index_(net.size(), -1) {}

  void build_plan() {
    ConeWorkspace ws(net_);
    for (NodeId n = 0; n < net_.size(); ++n) {
      const Gate& g = net_.gate(n);
      if (g.type == GateType::Input || g.fanin.size() < 2) continue;

      // Case 4: look for joining points V within MAXLIST levels.  The
      // candidate set also contains intra-cone reconvergence stems
      // (V(a,a)): pinning them makes the in-cone conditionals P(a_i | A_v)
      // of formula (2) sharp (see ConeWorkspace::conditioning_points).
      ws.compute(g.fanin, params_.maxlist);
      std::vector<NodeId> v = ws.conditioning_points(n);
      if (v.empty()) continue;
      stats_.total_joining_points += v.size();

      // Keep the candidates closest to the gate (strongest correlations
      // are near the reconvergence) when V is oversized.
      if (v.size() > params_.max_candidates) {
        std::sort(v.begin(), v.end(), [&](NodeId a, NodeId b) {
          return net_.level(a) > net_.level(b);
        });
        v.resize(params_.max_candidates);
        std::sort(v.begin(), v.end());
      }
      plan_index_[n] = static_cast<std::int32_t>(plans_.size());
      plans_.push_back({n, std::move(v), ws.cone(), {}});
    }
  }

  std::vector<double> run(std::span<const double> input_probs, bool select) {
    std::vector<double> p(net_.size(), 0.0);
    const auto inputs = net_.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i)
      p[inputs[i]] = input_probs[i];

    if (select) {
      stats_.gates_conditioned = 0;
      stats_.max_w = 0;
    }

    for (NodeId n = 0; n < net_.size(); ++n) {
      const Gate& g = net_.gate(n);
      if (g.type == GateType::Input) continue;

      // Cases 1-3 of sect. 2: no conditioning possible or necessary.
      auto naive_value = [&] {
        ins_.clear();
        for (NodeId f : g.fanin) ins_.push_back(p[f]);
        return eval_gate_prob(g.type, ins_);
      };
      const std::int32_t idx = plan_index_[n];
      if (idx < 0) {
        p[n] = naive_value();
        continue;
      }
      GatePlan& plan = plans_[static_cast<std::size_t>(idx)];
      if (select) select_w(plan, p);
      if (plan.w.empty()) {
        p[n] = naive_value();
        continue;
      }
      if (select) {
        ++stats_.gates_conditioned;
        stats_.max_w = std::max(stats_.max_w, plan.w.size());
      }
      p[n] = conditioned_prob(plan, g, p);
    }
    return p;
  }

  const ProtestStats& stats() const { return stats_; }

 private:
  /// Scores the candidates with the covariance criterion — maximize
  /// p_x (1-p_x) * max_{i<=j} |Delta(a_i,x) Delta(a_j,x)| with Delta from
  /// one-point conditionals — and records the top MAXVERS as plan.w.
  void select_w(GatePlan& plan, std::span<const double> p) {
    const Gate& g = net_.gate(plan.node);
    plan.w.clear();
    scored_.clear();
    delta_.resize(g.fanin.size());
    for (NodeId x : plan.candidates) {
      const double px = p[x];
      const double sx2 = px * (1.0 - px);
      if (sx2 <= params_.min_score) continue;
      pins_.assign(1, {x, 1.0});
      prop_.run(plan.cone, pins_, p);
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        delta_[i] = prop_.prob(g.fanin[i], p);
      pins_.assign(1, {x, 0.0});
      prop_.run(plan.cone, pins_, p);
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        delta_[i] -= prop_.prob(g.fanin[i], p);
      double best = 0.0;
      for (std::size_t i = 0; i < g.fanin.size(); ++i)
        for (std::size_t j = i; j < g.fanin.size(); ++j)
          best = std::max(best, std::abs(delta_[i] * delta_[j]));
      const double score = sx2 * best;
      if (score > params_.min_score) scored_.emplace_back(score, x);
    }
    if (scored_.empty()) return;
    std::sort(scored_.begin(), scored_.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    for (std::size_t i = 0;
         i < scored_.size() && plan.w.size() < params_.maxvers; ++i)
      plan.w.push_back(scored_[i].second);
    std::sort(plan.w.begin(), plan.w.end());  // topological, for the chain
  }

  /// Formula (2): enumerate assignments of W depth-first so that each
  /// branching weight is the conditional P(w_j | w_1..w_{j-1}) read off
  /// the re-propagated cone — sharper than the independence product when
  /// joining points feed each other.
  double conditioned_prob(const GatePlan& plan, const Gate& g,
                          std::span<const double> p) {
    const std::vector<NodeId>& w = plan.w;
    double acc = 0.0;
    ins_.resize(g.fanin.size());
    auto rec = [&](auto&& self, std::size_t j, double weight) -> void {
      if (weight <= 0.0) return;
      pins_.resize(j);
      prop_.run(plan.cone, pins_, p);
      if (j == w.size()) {
        for (std::size_t i = 0; i < g.fanin.size(); ++i)
          ins_[i] = prop_.prob(g.fanin[i], p);
        acc += weight * eval_gate_prob(g.type, ins_);
        return;
      }
      const double q = std::clamp(prop_.prob(w[j], p), 0.0, 1.0);
      pins_.emplace_back(w[j], 1.0);
      self(self, j + 1, weight * q);
      pins_.resize(j);
      pins_.emplace_back(w[j], 0.0);
      self(self, j + 1, weight * (1.0 - q));
      pins_.resize(j);
    };
    pins_.clear();
    rec(rec, 0, 1.0);
    return std::clamp(acc, 0.0, 1.0);
  }

  const Netlist& net_;
  const ProtestParams& params_;
  ConeProp prop_;
  std::vector<std::int32_t> plan_index_;  ///< node -> plans_ index or -1
  std::vector<GatePlan> plans_;
  ProtestStats stats_;

  // per-tuple scratch
  std::vector<double> ins_;
  std::vector<double> delta_;
  std::vector<std::pair<NodeId, double>> pins_;
  std::vector<std::pair<double, NodeId>> scored_;
};

}  // namespace

ProtestEstimator::ProtestEstimator(const Netlist& net, ProtestParams params)
    : net_(net), params_(params) {
  if (!net.finalized())
    throw std::logic_error("ProtestEstimator: netlist must be finalized");
}

std::vector<double> ProtestEstimator::signal_probs(
    std::span<const double> input_probs) const {
  validate_input_probs(net_, input_probs);
  Evaluator ev(net_, params_);
  ev.build_plan();
  std::vector<double> p = ev.run(input_probs, /*select=*/true);
  stats_ = ev.stats();
  return p;
}

std::vector<std::vector<double>> ProtestEstimator::signal_probs_batch(
    std::span<const InputProbs> batch) const {
  for (const InputProbs& t : batch) validate_input_probs(net_, t);
  std::vector<std::vector<double>> out;
  out.reserve(batch.size());
  if (batch.empty()) return out;

  Evaluator ev(net_, params_);
  ev.build_plan();
  out.push_back(ev.run(batch[0], /*select=*/true));
  for (std::size_t t = 1; t < batch.size(); ++t)
    out.push_back(ev.run(batch[t], /*select=*/false));
  stats_ = ev.stats();
  return out;
}

}  // namespace protest
