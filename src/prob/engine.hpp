// The polymorphic signal-probability engine layer.  The paper's point
// estimator (sect. 2) is one of several ways to compute per-node signal
// probabilities; the library also ships an independence propagation
// (Agrawal), two exact oracles (BDD, enumeration) and a Monte-Carlo
// reference.  SignalProbEngine gives all of them one API so that callers —
// the Protest facade, the hill-climb objective, the CLI, the benches —
// can swap or cross-validate engines freely.
//
// Input validation (arity, range, finalized netlist) happens in the base
// class, so every engine behaves uniformly and implementations only see
// validated tuples.  (The wrapped free functions keep their own checks for
// direct callers; the redundancy is O(inputs) and deliberate.)
//
// Batched evaluation: signal_probs_batch() maps a span of input tuples to
// one probability vector each.  The default implementation loops over
// compute(); engines override it to share work across tuples — the
// PROTEST engine reuses its cone topology and joining-point selection, the
// Monte-Carlo engine reuses one BlockSimulator.  The hill-climb optimizer
// evaluates hundreds of neighbor tuples per step through this entry point.
//
// Thread safety: an engine instance is NOT safe for concurrent use, even
// through const methods — the PROTEST engine memoizes its per-netlist plan
// and selection state across calls, the naive engine caches fanout cones,
// and the Monte-Carlo engine keeps per-worker simulators.  The supported
// way to parallelize is one engine per thread, and clone() is the seam:
// it returns a fresh engine of the same type and parameters sharing no
// mutable state (construction is cheap; plans build lazily on first
// evaluation).  ParallelBatchEvaluator (prob/parallel_eval.hpp) packages
// that pattern — a fixed pool of per-worker clones fanning a tuple batch
// or a neighborhood sweep across cores.  The Monte-Carlo engine instead
// parallelizes INTERNALLY (internally_parallel() == true when configured
// with > 1 thread): it shards its pattern budget across a private pool
// with bit-identical results for any thread count (see
// prob/monte_carlo.hpp for the stream-derivation rule) — don't stack a
// clone layer on top of it.
//
// Cancellation: every public entry point checkpoints the calling
// thread's CancelToken (util/cancel.hpp) before evaluating — and between
// batch tuples — throwing OperationCancelled when an async job has been
// cancelled; the Monte-Carlo engine additionally checkpoints at every
// shard boundary.  Under the inert default token the checks cost one
// branch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/cone.hpp"
#include "prob/protest_estimator.hpp"
#include "prob/signal_prob.hpp"
#include "util/thread_pool.hpp"

namespace protest {

class SignalProbEngine {
 public:
  virtual ~SignalProbEngine() = default;

  SignalProbEngine(const SignalProbEngine&) = delete;
  SignalProbEngine& operator=(const SignalProbEngine&) = delete;

  /// Registry key of this engine ("protest", "naive", ...).
  std::string_view name() const { return name_; }
  const Netlist& netlist() const { return net_; }

  /// Per-node signal probabilities for one input tuple.  Validates the
  /// tuple (throws std::invalid_argument on arity/range errors) before
  /// dispatching to the implementation.
  std::vector<double> signal_probs(std::span<const double> input_probs) const;

  /// Per-node signal probabilities for every tuple of `batch`.  Validates
  /// all tuples up front; engines may share scratch state (and, for the
  /// PROTEST engine, the per-gate conditioning-set selection) across the
  /// batch — see the concrete engine for its exact batch semantics.
  std::vector<std::vector<double>> signal_probs_batch(
      std::span<const InputProbs> batch) const;

  /// Incremental re-evaluation for a single-coordinate perturbation: given
  /// a base evaluation (`base_inputs` and the node probabilities
  /// signal_probs(base_inputs) returned for it), computes the node
  /// probabilities of the tuple that differs from `base_inputs` only at
  /// `input_index`, where it takes `new_p`.
  ///
  /// With PerturbMode::Exact (the default) the result is bit-for-bit
  /// identical to calling signal_probs() on the perturbed tuple for every
  /// engine: incremental engines (protest, naive) re-evaluate only the
  /// transitive fanout cone of the changed input — nodes outside that cone
  /// are functions of unchanged values — while the rest fall back to a
  /// full deterministic re-evaluation.  PerturbMode::FrozenSelection is
  /// the neighborhood-screening fidelity: engines with tuple-dependent
  /// conditioning selections (protest) reuse the sets selected at the base
  /// tuple, reproducing bit for bit what a signal_probs_batch anchored at
  /// the base computes for the perturbed tuple, at eval-only cost;
  /// engines without such state treat it as Exact.
  std::vector<double> signal_probs_perturb(
      std::span<const double> base_inputs,
      std::span<const double> base_node_probs, std::size_t input_index,
      double new_p, PerturbMode mode = PerturbMode::Exact) const;

  /// True when signal_probs_perturb re-evaluates only the fanout cone of
  /// the changed input instead of recomputing the whole netlist.
  virtual bool incremental() const { return false; }

  /// Fresh engine of the same type and parameters on the same netlist,
  /// sharing no mutable state — the seam for per-thread parallelism (each
  /// worker evaluates through its own clone; see ParallelBatchEvaluator).
  virtual std::unique_ptr<SignalProbEngine> clone() const = 0;

  /// True when the engine fans single evaluations across its own thread
  /// pool (the sharded Monte-Carlo engine with > 1 configured thread).
  /// Callers that parallelize via per-thread clones should skip such
  /// engines instead of oversubscribing the machine.
  virtual bool internally_parallel() const { return false; }

 protected:
  /// Throws std::invalid_argument unless `net` is finalized.
  SignalProbEngine(const Netlist& net, std::string name);

  /// One validated tuple -> per-node probabilities.
  virtual std::vector<double> compute(
      std::span<const double> input_probs) const = 0;

  /// Validated tuples -> per-node probabilities each.  Default: loop over
  /// compute().
  virtual std::vector<std::vector<double>> compute_batch(
      std::span<const InputProbs> batch) const;

  /// Validated perturbation -> per-node probabilities.  Default: build the
  /// perturbed tuple and run compute() from scratch (identical by
  /// determinism, for either mode); incremental engines override.
  virtual std::vector<double> compute_perturb(
      std::span<const double> base_inputs,
      std::span<const double> base_node_probs, std::size_t input_index,
      double new_p, PerturbMode mode) const;

 private:
  const Netlist& net_;
  std::string name_;
};

// --- concrete engines -------------------------------------------------------

/// Independence propagation [AgAg75]; exact on fanout-reconvergence-free
/// circuits, "cases 1-3 only" elsewhere.  O(gates) per tuple.
class NaiveEngine final : public SignalProbEngine {
 public:
  explicit NaiveEngine(const Netlist& net);
  bool incremental() const override { return true; }
  std::unique_ptr<SignalProbEngine> clone() const override;

 protected:
  std::vector<double> compute(std::span<const double> input_probs) const override;
  std::vector<double> compute_perturb(
      std::span<const double> base_inputs,
      std::span<const double> base_node_probs, std::size_t input_index,
      double new_p, PerturbMode mode) const override;

 private:
  mutable InputFanoutCones fanout_cones_;  ///< incremental work lists
};

/// Exact probabilities via ROBDDs.  Exponential worst case; throws
/// BddLimitExceeded beyond `node_limit` BDD nodes.
class ExactBddEngine final : public SignalProbEngine {
 public:
  explicit ExactBddEngine(const Netlist& net,
                          std::size_t node_limit = 2'000'000);
  std::size_t node_limit() const { return node_limit_; }
  std::unique_ptr<SignalProbEngine> clone() const override;

 protected:
  std::vector<double> compute(std::span<const double> input_probs) const override;

 private:
  std::size_t node_limit_;
};

/// Exact probabilities by weighted exhaustive enumeration (<= 24 inputs).
class ExactEnumEngine final : public SignalProbEngine {
 public:
  explicit ExactEnumEngine(const Netlist& net);
  std::unique_ptr<SignalProbEngine> clone() const override;

 protected:
  std::vector<double> compute(std::span<const double> input_probs) const override;
};

struct MonteCarloEngineParams {
  std::size_t num_patterns = 100'000;
  std::uint64_t seed = 1;
  /// Workers the pattern shards fan across (see prob/monte_carlo.hpp for
  /// the sharding scheme).  Results are bit-identical for every value.
  ParallelConfig parallel;
  /// Word-block width of the per-worker WordSimulator (W x 64 patterns
  /// per compiled-core pass).  Results are bit-identical for every width.
  std::size_t words_per_block = 8;
};

/// STAFAN-style Monte-Carlo reference: simulate weighted random patterns
/// and count ones.  Evaluation shards the pattern budget across a private
/// thread pool — counter-based per-shard RNG streams make the estimate
/// bit-identical for any thread count — and batch evaluation reuses the
/// per-worker simulators across all tuples.
class MonteCarloEngine final : public SignalProbEngine {
 public:
  explicit MonteCarloEngine(const Netlist& net,
                            MonteCarloEngineParams params = {});
  ~MonteCarloEngine() override;
  const MonteCarloEngineParams& params() const { return params_; }
  std::unique_ptr<SignalProbEngine> clone() const override;
  bool internally_parallel() const override;

 protected:
  std::vector<double> compute(std::span<const double> input_probs) const override;
  std::vector<std::vector<double>> compute_batch(
      std::span<const InputProbs> batch) const override;

 private:
  struct Worker;  ///< per-worker simulator + one-counts + word scratch
  std::vector<double> run_tuple(std::span<const double> input_probs) const;

  MonteCarloEngineParams params_;
  /// Lazy per-evaluation state; an engine is single-caller by contract, so
  /// these are scratch, not shared state.  The executor itself may be a
  /// SHARED one injected through params_.parallel.executor — it serializes
  /// jobs internally, so clones sharing it stay race-free.
  mutable std::shared_ptr<Executor> exec_;
  mutable std::vector<std::unique_ptr<Worker>> workers_;
};

/// The paper's estimator (sect. 2) behind the engine API.  Batch
/// evaluation reuses the cone topology and the covariance-selected
/// conditioning sets across tuples (see ProtestEstimator::signal_probs_batch
/// for the exact semantics).
class ProtestEngine final : public SignalProbEngine {
 public:
  explicit ProtestEngine(const Netlist& net, ProtestParams params = {});

  const ProtestParams& params() const { return estimator_.params(); }
  /// Statistics of the most recent evaluation.
  const ProtestStats& stats() const { return estimator_.stats(); }
  bool incremental() const override { return true; }
  std::unique_ptr<SignalProbEngine> clone() const override;

 protected:
  std::vector<double> compute(std::span<const double> input_probs) const override;
  std::vector<std::vector<double>> compute_batch(
      std::span<const InputProbs> batch) const override;
  std::vector<double> compute_perturb(
      std::span<const double> base_inputs,
      std::span<const double> base_node_probs, std::size_t input_index,
      double new_p, PerturbMode mode) const override;

 private:
  ProtestEstimator estimator_;
};

// --- factory / registry -----------------------------------------------------

/// Construction knobs for the built-in engines; each engine reads only its
/// own section.
struct EngineConfig {
  ProtestParams protest;
  MonteCarloEngineParams monte_carlo;
  std::size_t bdd_node_limit = 2'000'000;
};

using EngineFactory = std::function<std::unique_ptr<SignalProbEngine>(
    const Netlist&, const EngineConfig&)>;

/// Instantiates a registered engine.  Built-in names: "protest", "naive",
/// "exact-bdd", "exact-enum", "monte-carlo".  Throws std::invalid_argument
/// for unknown names (the message lists the registered ones).
std::unique_ptr<SignalProbEngine> make_engine(const std::string& name,
                                              const Netlist& net,
                                              const EngineConfig& config = {});

/// All registered engine names, sorted.
std::vector<std::string> engine_names();

/// Adds (or replaces) a factory under `name`; the seam future backends
/// plug into.
void register_engine(const std::string& name, EngineFactory factory);

}  // namespace protest
