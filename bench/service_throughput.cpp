// Requests/sec through the service layer: resident registry sessions vs
// a cold service per request, and serial vs pipelined dispatch.
//
// The workload is an interactive client loop on one netlist — an analyze
// of the base tuple followed by single-coordinate perturbs — sent as
// NDJSON lines through ProtestService::handle_line, i.e. the full daemon
// path (parse, dispatch, evaluate, serialize).  Resident mode keeps one
// service (and thus one hot session: cached plans, tuple cache,
// incremental perturbs); cold mode builds a fresh service and reloads the
// netlist for every request, the way a batch binary would.  Both modes
// must produce byte-identical analyze payloads (exit 1 otherwise).
//
// The pipelined section feeds the SAME conversation through serve_ndjson
// twice — serial dispatch (--inflight 0) and pipelined out-of-order
// dispatch (--inflight 4) — and records sync vs pipelined requests/sec.
// The response SETS must match byte for byte (exit 1 otherwise); only the
// order may differ.  With one hardware core the pipelined numbers mostly
// measure dispatch overhead — hardware_threads is recorded alongside.
//
// The supervised section drives the SAME interactive workload through
// `Supervisor` fleets of 1 and N worker processes (several registered
// netlists so rendezvous placement actually spreads the load, several
// client threads so the fleets see concurrent requests) and records
// requests/sec plus p50/p99 request latency for each fleet size.  It
// needs the CLI binary to spawn workers from: PROTEST_BIN, or ./protest
// next to the current directory; the section is skipped when neither
// resolves (metrics simply absent from the JSON).
//
// Emits BENCH_service_throughput.json.  Run with --quick for a CI smoke.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "circuits/zoo.hpp"
#include "protest/service.hpp"
#include "protest/supervisor.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace protest {
namespace {

bool g_parity_ok = true;

std::string load_line(const std::string& circuit) {
  ServiceRequest load;
  load.verb = ServiceVerb::LoadNetlist;
  load.netlist = circuit;
  load.circuit = circuit;
  return load.to_json(0);
}

/// The client loop: one base analyze, then perturbs cycling over inputs
/// and a few grid values (every perturb re-analyzes the base — a cache
/// hit on a resident session, a full evaluation on a cold one).
std::vector<std::string> request_script(const std::string& circuit,
                                        std::size_t num_inputs,
                                        std::size_t num_requests) {
  std::vector<std::string> lines;
  lines.reserve(num_requests);
  ServiceRequest analyze;
  analyze.verb = ServiceVerb::Analyze;
  analyze.netlist = circuit;
  analyze.id = 2;  // correlatable ids: the load line takes 1
  analyze.p = 0.5;
  lines.push_back(analyze.to_json(0));
  const double values[] = {0.25, 0.75, 0.125, 0.875};
  for (std::size_t i = 1; i < num_requests; ++i) {
    ServiceRequest perturb;
    perturb.verb = ServiceVerb::Perturb;
    perturb.netlist = circuit;
    perturb.id = i + 2;
    perturb.p = 0.5;
    perturb.input_index = i % num_inputs;
    perturb.new_p = values[i % (sizeof values / sizeof values[0])];
    lines.push_back(perturb.to_json(0));
  }
  return lines;
}

/// Runs every line through one resident service; returns the first
/// (analyze) response for the parity check.
std::string run_resident(const std::string& circuit,
                         std::span<const std::string> lines) {
  ProtestService service;
  service.handle_line(load_line(circuit));
  std::string first;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string resp = service.handle_line(lines[i]);
    if (i == 0) first = resp;
    if (resp.find("\"ok\":true") == std::string::npos) {
      std::printf("ERROR: request failed: %s\n", resp.c_str());
      g_parity_ok = false;
    }
  }
  return first;
}

/// One fresh service (and netlist load) per request — the no-registry
/// baseline.
std::string run_cold(const std::string& circuit,
                     std::span<const std::string> lines) {
  std::string first;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ProtestService service;
    service.handle_line(load_line(circuit));
    const std::string resp = service.handle_line(lines[i]);
    if (i == 0) first = resp;
  }
  return first;
}

/// Feeds the whole conversation (load + script) through serve_ndjson with
/// the given dispatch options; returns the response lines.
std::vector<std::string> run_serve(const std::string& circuit,
                                   std::span<const std::string> lines,
                                   ServeOptions options) {
  std::string conversation = load_line(circuit) + "\n";
  for (const std::string& line : lines) conversation += line + "\n";
  std::istringstream in(conversation);
  std::ostringstream out;
  ProtestService service;
  serve_ndjson(service, in, out, options);
  std::vector<std::string> responses;
  std::istringstream split(out.str());
  std::string response;
  while (std::getline(split, response)) responses.push_back(response);
  return responses;
}

/// Serial vs pipelined serve over the same conversation: records sync and
/// pipelined requests/sec and enforces response-set equality byte for
/// byte (order is the only permitted difference).
void run_pipelined(bench::BenchJson& json, const std::string& circuit,
                   std::span<const std::string> script) {
  constexpr std::size_t kInflight = 4;
  std::vector<std::string> serial, pipelined;
  const double t_serial = bench::time_seconds(
      [&] { serial = run_serve(circuit, script, ServeOptions{}); });
  const double t_pipelined = bench::time_seconds([&] {
    pipelined = run_serve(circuit, script, ServeOptions{kInflight});
  });
  const double requests = static_cast<double>(script.size()) + 1;  // + load
  const double sync_rps = requests / t_serial;
  const double pipe_rps = requests / t_pipelined;

  std::sort(serial.begin(), serial.end());
  std::sort(pipelined.begin(), pipelined.end());
  if (serial != pipelined) {
    std::printf("ERROR: pipelined response set differs from serial!\n");
    g_parity_ok = false;
  }

  TextTable t({"dispatch", "requests/sec", "ms/request"});
  t.add_row({"serial", fmt(sync_rps, 1), fmt(1000.0 * t_serial / requests, 3)});
  t.add_row({"pipelined(" + fmt_int(kInflight) + ")", fmt(pipe_rps, 1),
             fmt(1000.0 * t_pipelined / requests, 3)});
  std::printf("%s", t.str().c_str());
  std::printf("pipelined/serial speedup: %.2fx\n",
              sync_rps > 0.0 ? pipe_rps / sync_rps : 0.0);

  json.metric(circuit + ".sync.requests_per_sec", sync_rps);
  json.metric(circuit + ".pipelined.requests_per_sec", pipe_rps);
  json.metric(circuit + ".pipelined.inflight",
              static_cast<double>(kInflight));
  json.metric(circuit + ".pipelined.speedup",
              sync_rps > 0.0 ? pipe_rps / sync_rps : 0.0);
}

void run_circuit(bench::BenchJson& json, const std::string& circuit,
                 std::size_t resident_requests, std::size_t cold_requests) {
  const Netlist net = make_circuit(circuit);
  const std::vector<std::string> script =
      request_script(circuit, net.inputs().size(), resident_requests);
  const std::span<const std::string> cold_script(
      script.data(), std::min(cold_requests, script.size()));

  std::string resident_first, cold_first;
  const double t_resident =
      bench::time_seconds([&] { resident_first = run_resident(circuit, script); });
  const double t_cold =
      bench::time_seconds([&] { cold_first = run_cold(circuit, cold_script); });

  const double resident_rps =
      static_cast<double>(script.size()) / t_resident;
  const double cold_rps = static_cast<double>(cold_script.size()) / t_cold;

  std::printf("\n%s: %zu gates, %zu resident / %zu cold requests\n",
              circuit.c_str(), net.num_gates(), script.size(),
              cold_script.size());
  TextTable t({"mode", "requests/sec", "ms/request"});
  t.add_row({"resident", fmt(resident_rps, 1),
             fmt(1000.0 * t_resident / static_cast<double>(script.size()), 3)});
  t.add_row({"cold", fmt(cold_rps, 1),
             fmt(1000.0 * t_cold / static_cast<double>(cold_script.size()), 3)});
  std::printf("%s", t.str().c_str());
  std::printf("resident/cold speedup: %.2fx\n",
              cold_rps > 0.0 ? resident_rps / cold_rps : 0.0);

  if (resident_first != cold_first) {
    std::printf("ERROR: resident and cold analyze payloads differ!\n");
    g_parity_ok = false;
  }

  run_pipelined(json, circuit, script);

  json.metric(circuit + ".resident.requests", static_cast<double>(script.size()));
  json.metric(circuit + ".resident.requests_per_sec", resident_rps);
  json.metric(circuit + ".cold.requests", static_cast<double>(cold_script.size()));
  json.metric(circuit + ".cold.requests_per_sec", cold_rps);
  json.metric(circuit + ".speedup",
              cold_rps > 0.0 ? resident_rps / cold_rps : 0.0);
}

/// The worker executable for the supervised section.  The bench binary
/// itself is NOT a valid worker (Supervisor's /proc/self/exe fallback
/// would spawn benches recursively), so only explicit paths qualify.
std::string find_worker_binary() {
  if (const char* bin = std::getenv("PROTEST_BIN"); bin && *bin) return bin;
#if defined(__unix__) || defined(__APPLE__)
  if (::access("./protest", X_OK) == 0) return "./protest";
#endif
  return "";
}

/// Drives `total` requests through the supervisor from `clients` threads
/// (round-robin over the registered names) and reports throughput and
/// latency quantiles.
struct FleetResult {
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

FleetResult drive_fleet(Supervisor& sup, const std::vector<std::string>& names,
                        std::size_t clients, std::size_t per_client) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      const double values[] = {0.25, 0.75, 0.125, 0.875};
      for (std::size_t i = 0; i < per_client; ++i) {
        ServiceRequest req;
        req.verb = ServiceVerb::Perturb;
        req.netlist = names[(c + i) % names.size()];
        req.id = c * per_client + i + 100;
        req.p = 0.5;
        req.input_index = i % 4;
        req.new_p = values[(c + i) % (sizeof values / sizeof values[0])];
        const auto r0 = std::chrono::steady_clock::now();
        const std::string resp = sup.handle_line(req.to_json(0));
        const auto r1 = std::chrono::steady_clock::now();
        if (resp.find("\"ok\":true") == std::string::npos) {
          std::printf("ERROR: supervised request failed: %s\n", resp.c_str());
          g_parity_ok = false;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(r1 - r0).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  FleetResult res;
  res.rps = elapsed > 0.0 ? static_cast<double>(all.size()) / elapsed : 0.0;
  if (!all.empty()) {
    res.p50_ms = all[all.size() / 2];
    res.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return res;
}

void run_supervised(bench::BenchJson& json, bool quick) {
  if (!supervisor_supported()) {
    std::printf("\nsupervised: unsupported on this platform, skipping\n");
    return;
  }
  const std::string binary = find_worker_binary();
  if (binary.empty()) {
    std::printf(
        "\nsupervised: no worker binary (set PROTEST_BIN or run next to "
        "./protest), skipping\n");
    return;
  }
  const unsigned fleet = std::max(2u, std::min(4u, ParallelConfig{}.resolved()));
  const std::size_t clients = 4;
  const std::size_t per_client = quick ? 25 : 100;
  // Several names of the same circuit: identical work per request, but
  // rendezvous placement spreads them across the fleet.
  std::vector<std::string> names;
  for (int i = 0; i < 4; ++i) names.push_back("alu" + std::to_string(i));

  std::printf("\nsupervised serve: 1 vs %u workers, %zu clients x %zu "
              "requests\n",
              fleet, clients, per_client);
  TextTable t({"fleet", "requests/sec", "p50 ms", "p99 ms"});
  std::vector<std::pair<unsigned, FleetResult>> rows;
  for (const unsigned workers : {1u, fleet}) {
    SupervisorOptions opts;
    opts.workers = workers;
    opts.worker_binary = binary;
    std::ostringstream log;
    Supervisor sup(opts, log);
    for (std::size_t i = 0; i < names.size(); ++i) {
      ServiceRequest load;
      load.verb = ServiceVerb::LoadNetlist;
      load.id = i + 1;
      load.netlist = names[i];
      load.circuit = "alu";
      const std::string resp = sup.handle_line(load.to_json(0));
      if (resp.find("\"ok\":true") == std::string::npos) {
        std::printf("ERROR: supervised load failed: %s\n", resp.c_str());
        g_parity_ok = false;
        return;
      }
    }
    const FleetResult res = drive_fleet(sup, names, clients, per_client);
    ServiceRequest bye;
    bye.verb = ServiceVerb::Shutdown;
    bye.id = 999999;
    sup.handle_line(bye.to_json(0));
    rows.emplace_back(workers, res);
    t.add_row({fmt_int(workers) + (workers == 1 ? " worker" : " workers"),
               fmt(res.rps, 1), fmt(res.p50_ms, 3), fmt(res.p99_ms, 3)});
    const std::string key =
        "supervised.workers" + std::to_string(workers);
    json.metric(key + ".requests_per_sec", res.rps);
    json.metric(key + ".p50_ms", res.p50_ms);
    json.metric(key + ".p99_ms", res.p99_ms);
  }
  std::printf("%s", t.str().c_str());
  if (rows.size() == 2 && rows[0].second.rps > 0.0) {
    const double speedup = rows[1].second.rps / rows[0].second.rps;
    std::printf("multi-worker speedup: %.2fx\n", speedup);
    json.metric("supervised.speedup", speedup);
  }
}

}  // namespace
}  // namespace protest

int main(int argc, char** argv) {
  using namespace protest;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::print_header("service throughput (resident registry vs cold)");
  const unsigned hw = ParallelConfig{}.resolved();
  std::printf("hardware threads: %u\n", hw);
  bench::BenchJson json("service_throughput");
  json.metric("hardware_threads", static_cast<double>(hw));
  if (quick) {
    run_circuit(json, "alu", 20, 4);
  } else {
    run_circuit(json, "alu", 400, 40);
    run_circuit(json, "div", 120, 12);
  }
  run_supervised(json, quick);
  json.write();
  return g_parity_ok ? 0 : 1;
}
