// The session's incremental perturb() path vs PR 1's batch path on the
// hill-climb neighborhood workload: the optimizer changes one coordinate
// of the current operating point at a time, so each candidate differs
// from the base tuple in exactly one input.  The batch path re-propagates
// every gate for every candidate (sharing only the per-batch selection);
// the incremental path re-evaluates just the changed input's fanout cone,
// with exact single-tuple semantics.
//
// Measured at two levels:
//   * engine:    signal_probs_batch vs signal_probs_perturb (pure
//                signal-probability cost), and
//   * objective: ObjectiveEvaluator::log_objectives_batch vs
//                log_objectives_neighborhood (the full hill-climb
//                pipeline including observability + detection).
//
// Emits BENCH_session_incremental.json.  Target: the incremental path
// beats the batch path on the SN74181 (alu) and 16-bit divider
// neighborhoods.  Run with --quick for a CI smoke (tiny workload).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/zoo.hpp"
#include "optimize/objective.hpp"
#include "prob/engine.hpp"

namespace protest {
namespace {

constexpr int kSteps[] = {8, -8, 4, -4, 2, -2, 1, -1};
constexpr unsigned kDen = 16;

/// Candidate grid values for one coordinate starting from k = 8.
std::vector<double> candidate_values() {
  std::vector<double> vals;
  for (int s : kSteps) {
    const int cand = 8 + s;
    if (cand < 1 || cand > static_cast<int>(kDen) - 1) continue;
    vals.push_back(static_cast<double>(cand) / kDen);
  }
  return vals;
}

void run_circuit(bench::BenchJson& json, const std::string& circuit,
                 std::size_t max_coords) {
  const Netlist net = make_circuit(circuit);
  const std::size_t coords = std::min(max_coords, net.inputs().size());
  const InputProbs base = uniform_input_probs(net, 8.0 / kDen);
  const std::vector<double> cand = candidate_values();
  std::printf("\n%s: %zu inputs (%zu swept), %zu gates, %zu candidates per "
              "coordinate\n",
              circuit.c_str(), net.inputs().size(), coords, net.num_gates(),
              cand.size());

  // --- engine level ---------------------------------------------------
  const auto engine = make_engine("protest", net);
  std::vector<std::vector<InputProbs>> batches;
  for (std::size_t i = 0; i < coords; ++i) {
    std::vector<InputProbs> b = {base};
    for (double v : cand) {
      InputProbs t = base;
      t[i] = v;
      b.push_back(std::move(t));
    }
    batches.push_back(std::move(b));
  }
  const double t_engine_batch = bench::time_seconds([&] {
    for (const auto& b : batches) engine->signal_probs_batch(b);
  });
  // The hill-climb fidelity: frozen-selection screening (bit-identical to
  // the batch numbers above, minus the base re-evaluated per batch).
  const double t_engine_screen = bench::time_seconds([&] {
    const std::vector<double> base_probs = engine->signal_probs(base);
    for (std::size_t i = 0; i < coords; ++i)
      for (double v : cand)
        engine->signal_probs_perturb(base, base_probs, i, v,
                                     PerturbMode::FrozenSelection);
  });
  // Exact fidelity: per-gate re-selection inside the fanout cone.
  const double t_engine_exact = bench::time_seconds([&] {
    const std::vector<double> base_probs = engine->signal_probs(base);
    for (std::size_t i = 0; i < coords; ++i)
      for (double v : cand)
        engine->signal_probs_perturb(base, base_probs, i, v,
                                     PerturbMode::Exact);
  });

  // --- objective level (full hill-climb pipeline) ---------------------
  const std::vector<Fault> faults = structural_fault_list(net);
  const std::uint64_t n_param = 10'000;
  const ObjectiveEvaluator eval_batch(net, faults, n_param);
  const ObjectiveEvaluator eval_inc(net, faults, n_param);
  std::vector<std::vector<double>> batch_vals, inc_vals;
  const double t_obj_batch = bench::time_seconds([&] {
    for (const auto& b : batches)
      batch_vals.push_back(eval_batch.log_objectives_batch(b));
  });
  const double t_obj_inc = bench::time_seconds([&] {
    for (std::size_t i = 0; i < coords; ++i) {
      const auto nb = eval_inc.log_objectives_neighborhood(base, i, cand);
      std::vector<double> vals = {nb.base};
      vals.insert(vals.end(), nb.candidates.begin(), nb.candidates.end());
      inc_vals.push_back(std::move(vals));
    }
  });

  // Sanity: screening values are bit-for-bit the batch values (same base
  // anchor, same frozen selections), so the gap must be exactly zero.
  double max_diff = 0.0;
  for (std::size_t i = 0; i < batch_vals.size(); ++i)
    for (std::size_t c = 0; c < batch_vals[i].size(); ++c)
      max_diff = std::max(
          max_diff, std::abs(batch_vals[i][c] - inc_vals[i][c]));

  const double screen_speedup =
      t_engine_screen > 0.0 ? t_engine_batch / t_engine_screen : 0.0;
  const double exact_speedup =
      t_engine_exact > 0.0 ? t_engine_batch / t_engine_exact : 0.0;
  const double obj_speedup = t_obj_inc > 0.0 ? t_obj_batch / t_obj_inc : 0.0;
  const std::size_t tuples = coords * (cand.size() + 1);
  TextTable t({"level", "fidelity", "tuples", "batch (s)", "incremental (s)",
               "speedup"});
  t.add_row({"engine", "screen", std::to_string(tuples),
             fmt(t_engine_batch, 4), fmt(t_engine_screen, 4),
             fmt(screen_speedup, 2) + "x"});
  t.add_row({"engine", "exact", std::to_string(tuples),
             fmt(t_engine_batch, 4), fmt(t_engine_exact, 4),
             fmt(exact_speedup, 2) + "x"});
  t.add_row({"objective", "hill-climb", std::to_string(tuples),
             fmt(t_obj_batch, 4), fmt(t_obj_inc, 4),
             fmt(obj_speedup, 2) + "x"});
  std::printf("%s", t.str().c_str());
  std::printf("max |batch - screening| objective gap: %.3g (expected 0: "
              "identical semantics)\n",
              max_diff);

  json.metric(circuit + ".tuples", static_cast<double>(tuples));
  json.metric(circuit + ".engine.batch_seconds", t_engine_batch);
  json.metric(circuit + ".engine.screen_seconds", t_engine_screen);
  json.metric(circuit + ".engine.screen_speedup", screen_speedup);
  json.metric(circuit + ".engine.exact_seconds", t_engine_exact);
  json.metric(circuit + ".engine.exact_speedup", exact_speedup);
  json.metric(circuit + ".objective.batch_seconds", t_obj_batch);
  json.metric(circuit + ".objective.incremental_seconds", t_obj_inc);
  json.metric(circuit + ".objective.speedup", obj_speedup);
  json.metric(circuit + ".max_objective_diff", max_diff);
}

}  // namespace
}  // namespace protest

int main(int argc, char** argv) {
  using namespace protest;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::print_header(
      "session incremental perturb vs PR 1 batch (hill-climb neighborhoods)");
  bench::BenchJson json("session_incremental");
  if (quick) {
    // CI smoke: two coordinates of the ALU, seconds of wall clock.
    run_circuit(json, "alu", 2);
  } else {
    run_circuit(json, "alu", 64);
    // The 16-bit divider is ~23x larger per tuple; sweep a slice.
    run_circuit(json, "div", 8);
  }
  json.write();
  return 0;
}
