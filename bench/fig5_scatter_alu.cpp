// Figure 5: correlation diagram for the ALU — every fault positioned by
// (P_PROT, P_SIM).  The paper's plot hugs the diagonal (C = 0.97).
// Pass --data to dump the raw series instead of the ASCII rendering.
#include <cstring>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "circuits/zoo.hpp"

int main(int argc, char** argv) {
  using namespace protest;
  const bool dump = argc > 1 && std::strcmp(argv[1], "--data") == 0;

  const Netlist net = make_circuit("alu");
  const Protest tool(net);
  const auto report = tool.analyze(uniform_input_probs(net, 0.5));
  const PatternSet all = PatternSet::exhaustive(net.inputs().size());
  const auto psim =
      tool.fault_simulate(all, FaultSimMode::CountDetections).detection_probs();

  if (dump) {
    std::printf("# P_PROT P_SIM (ALU, one line per fault)\n%s",
                scatter_series(report.detection_probs, psim).c_str());
    return 0;
  }
  bench::print_header("Fig. 5: correlation diagram for ALU (P_PROT vs P_SIM)");
  const ErrorStats s = compare_estimates(report.detection_probs, psim);
  std::printf("%s", ascii_scatter(report.detection_probs, psim).c_str());
  std::printf("\n%zu faults; C = %.3f (paper: 0.97); Delta = %.3f (paper 0.04)\n",
              s.count, s.correlation, s.mean_abs_error);
  std::printf("(run with --data for the raw scatter series)\n");
  return 0;
}
