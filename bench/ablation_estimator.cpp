// Ablation study of the design choices DESIGN.md calls out:
//
//  (a) MAXVERS (number of conditioned joining points) — accuracy vs cost
//      of the sect. 2 estimator, swept on the ALU against the exact
//      (enumerated) signal probabilities;
//  (b) MAXLIST (search depth) at fixed MAXVERS;
//  (c) stem model A (xor-chain) vs B (or-chain) and the gate-transfer
//      models on detection-probability accuracy;
//  (d) the "considerable computing time" exact-transform option (estimator
//      on the fault miter) vs the linear signal-flow model.
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "circuits/zoo.hpp"
#include "observe/detect.hpp"
#include "observe/miter.hpp"
#include "prob/engine.hpp"
#include "prob/exact.hpp"
#include "prob/naive.hpp"

namespace protest {
namespace {

void sweep_maxvers(const Netlist& net, const std::vector<double>& exact) {
  std::printf("\n(a) MAXVERS sweep on ALU signal probabilities (MAXLIST = 12)\n");
  TextTable t({"MAXVERS", "mean |err|", "max |err|", "time (s)",
               "gates conditioned"});
  const auto ip = uniform_input_probs(net, 0.5);
  for (unsigned mv : {0u, 1u, 2u, 4u, 6u, 8u}) {
    ProtestParams params;
    params.maxvers = mv;
    const ProtestEngine est(net, params);
    std::vector<double> probs;
    const double secs = bench::time_seconds([&] { probs = est.signal_probs(ip); });
    double mean = 0, mx = 0;
    for (NodeId n = 0; n < net.size(); ++n) {
      const double e = std::abs(probs[n] - exact[n]);
      mean += e;
      mx = std::max(mx, e);
    }
    mean /= static_cast<double>(net.size());
    t.add_row({std::to_string(mv), fmt(mean, 5), fmt(mx, 4), fmt(secs, 4),
               std::to_string(est.stats().gates_conditioned)});
  }
  std::printf("%s", t.str().c_str());
}

void sweep_maxlist(const Netlist& net, const std::vector<double>& exact) {
  std::printf("\n(b) MAXLIST sweep on ALU signal probabilities (MAXVERS = 4)\n");
  TextTable t({"MAXLIST", "mean |err|", "max |err|", "time (s)"});
  const auto ip = uniform_input_probs(net, 0.5);
  for (unsigned ml : {1u, 2u, 4u, 8u, 12u, 0u}) {
    ProtestParams params;
    params.maxlist = ml;
    const ProtestEngine est(net, params);
    std::vector<double> probs;
    const double secs = bench::time_seconds([&] { probs = est.signal_probs(ip); });
    double mean = 0, mx = 0;
    for (NodeId n = 0; n < net.size(); ++n) {
      const double e = std::abs(probs[n] - exact[n]);
      mean += e;
      mx = std::max(mx, e);
    }
    mean /= static_cast<double>(net.size());
    t.add_row({ml == 0 ? "unbounded" : std::to_string(ml), fmt(mean, 5),
               fmt(mx, 4), fmt(secs, 4)});
  }
  std::printf("%s", t.str().c_str());
}

void sweep_observability(const Netlist& net) {
  std::printf("\n(c) observability models vs exhaustive P_SIM (ALU)\n");
  const Protest base(net);
  const PatternSet all = PatternSet::exhaustive(net.inputs().size());
  const auto psim =
      base.fault_simulate(all, FaultSimMode::CountDetections).detection_probs();
  TextTable t({"stem model", "transfer", "corr", "mean |err|", "signed bias"});
  for (auto stem : {StemModel::XorChain, StemModel::OrChain})
    for (auto tr : {TransferModel::PaperArithmetic, TransferModel::BooleanDifference}) {
      ProtestOptions o;
      o.observability.stem = stem;
      o.observability.transfer = tr;
      const Protest tool(net, o);
      const auto rep = tool.analyze(uniform_input_probs(net, 0.5));
      const ErrorStats s = compare_estimates(rep.detection_probs, psim);
      t.add_row({stem == StemModel::XorChain ? "A (xor-chain)" : "B (or-chain)",
                 tr == TransferModel::PaperArithmetic ? "paper" : "bool-diff",
                 fmt(s.correlation, 3), fmt(s.mean_abs_error, 3),
                 fmt(s.mean_signed_error, 3)});
    }
  std::printf("%s", t.str().c_str());
  std::printf("(on these TTL-style netlists paper == bool-diff; the stem "
              "model is the lever)\n");
}

void miter_option_on(const char* name, std::size_t stride) {
  const Netlist net = make_circuit(name);
  const Protest tool(net);
  const PatternSet all = PatternSet::exhaustive(net.inputs().size());
  const auto psim =
      tool.fault_simulate(all, FaultSimMode::CountDetections).detection_probs();
  const auto ip = uniform_input_probs(net, 0.5);

  // Signal-flow model (linear).
  ProtestReport rep;
  const double t_flow = bench::time_seconds([&] { rep = tool.analyze(ip); });
  const ErrorStats s_flow = compare_estimates(rep.detection_probs, psim);

  // Miter transform (quadratic), sampled, at two conditioning budgets.
  TextTable t({"method", "faults", "corr", "mean |err|", "time (s)"});
  t.add_row({"signal flow (sect. 3)", std::to_string(tool.faults().size()),
             fmt(s_flow.correlation, 3), fmt(s_flow.mean_abs_error, 3),
             fmt(t_flow, 3)});
  for (unsigned mv : {4u, 10u}) {
    ProtestParams params;
    params.maxvers = mv;
    params.max_candidates = 48;
    std::vector<double> est_m, sim_m;
    const double t_miter = bench::time_seconds([&] {
      for (std::size_t i = 0; i < tool.faults().size(); i += stride) {
        est_m.push_back(
            estimated_detection_prob_miter(net, tool.faults()[i], ip, params));
        sim_m.push_back(psim[i]);
      }
    });
    const ErrorStats s = compare_estimates(est_m, sim_m);
    t.add_row({"miter estimator, MAXVERS=" + std::to_string(mv),
               std::to_string(est_m.size()), fmt(s.correlation, 3),
               fmt(s.mean_abs_error, 3), fmt(t_miter, 3)});
  }
  std::printf("\n%s:\n%s", name, t.str().c_str());
}

void miter_option() {
  std::printf("\n(d) exact-transform option: estimator on the fault miter\n");
  miter_option_on("c17", 1);
  miter_option_on("alu", 8);
  std::printf(
      "finding: the miter doubles the circuit and correlates every node with\n"
      "its twin; on reconvergence-dense logic (ALU) the bounded conditioning\n"
      "cannot keep up and the quadratic option is *worse* than the linear\n"
      "signal-flow model — matching the paper's remark that the transform\n"
      "\"is not appropriate for all applications\" (it is exact on c17).\n");
}

}  // namespace
}  // namespace protest

int main() {
  using namespace protest;
  bench::print_header("Ablations: estimator and observability design choices");
  const Netlist alu = make_circuit("alu");
  const auto exact =
      exact_signal_probs_enum(alu, uniform_input_probs(alu, 0.5));
  sweep_maxvers(alu, exact);
  sweep_maxlist(alu, exact);
  sweep_observability(alu);
  miter_option();
  return 0;
}
