// Batched vs single-call engine evaluation on the hill-climb neighbor
// workload: the optimizer perturbs one coordinate of the current
// operating point at a time, so a sweep evaluates dozens to hundreds of
// near-identical tuples.  signal_probs_batch amortizes the per-tuple
// setup — for the PROTEST engine the cone topology and the
// covariance-scored conditioning sets, for Monte-Carlo the BlockSimulator
// — across the whole neighborhood.
//
// Emits BENCH_engine_batch.json with per-circuit, per-engine single/batch
// wall times and the speedup, so the regression guard is a recorded
// number, not an assertion in prose.  Target: >= 2x for the PROTEST
// engine on the SN74181 (alu) workload.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/zoo.hpp"
#include "prob/engine.hpp"

namespace protest {
namespace {

/// One hill-climb sweep's worth of tuples: the current point (all inputs
/// at 8/16) plus every in-range geometric neighbor step per coordinate,
/// capped at `max_tuples` (the cap is logged when it bites).
std::vector<InputProbs> neighbor_workload(const Netlist& net,
                                          std::size_t max_tuples) {
  const unsigned den = 16;
  const InputProbs current = uniform_input_probs(net, 8.0 / den);
  std::vector<InputProbs> tuples = {current};
  for (std::size_t i = 0; i < net.inputs().size(); ++i) {
    for (int s : {8, -8, 4, -4, 2, -2, 1, -1}) {
      const int cand = 8 + s;
      if (cand < 1 || cand > static_cast<int>(den) - 1) continue;
      InputProbs t = current;
      t[i] = static_cast<double>(cand) / den;
      tuples.push_back(std::move(t));
      if (tuples.size() >= max_tuples) {
        std::printf("  (workload capped at %zu tuples, %zu of %zu "
                    "coordinates covered)\n",
                    max_tuples, i + 1, net.inputs().size());
        return tuples;
      }
    }
  }
  return tuples;
}

void run_engine(bench::BenchJson& json, const std::string& circuit,
                const Netlist& net, const std::string& engine_name,
                const EngineConfig& cfg,
                const std::vector<InputProbs>& tuples, TextTable& table) {
  const auto engine = make_engine(engine_name, net, cfg);
  std::vector<std::vector<double>> single_out, batch_out;
  const double t_single = bench::time_seconds([&] {
    single_out.reserve(tuples.size());
    for (const InputProbs& t : tuples)
      single_out.push_back(engine->signal_probs(t));
  });
  const double t_batch = bench::time_seconds(
      [&] { batch_out = engine->signal_probs_batch(tuples); });
  const double speedup = t_batch > 0.0 ? t_single / t_batch : 0.0;

  // Sanity: the batch must produce the same number of vectors and agree
  // on the selection-reference tuple.
  double ref_diff = 0.0;
  for (NodeId n = 0; n < net.size(); ++n)
    ref_diff = std::max(ref_diff,
                        std::abs(single_out[0][n] - batch_out[0][n]));

  const std::string key = circuit + "." + engine_name;
  json.metric(key + ".tuples", static_cast<double>(tuples.size()));
  json.metric(key + ".single_seconds", t_single);
  json.metric(key + ".batch_seconds", t_batch);
  json.metric(key + ".speedup", speedup);
  table.add_row({engine_name, std::to_string(tuples.size()),
                 fmt(t_single, 4), fmt(t_batch, 4), fmt(speedup, 2) + "x",
                 fmt(ref_diff, 12)});
}

void run_circuit(bench::BenchJson& json, const std::string& circuit,
                 std::size_t max_tuples,
                 const std::vector<std::string>& engines) {
  const Netlist net = make_circuit(circuit);
  std::printf("\n%s: %zu inputs, %zu gates\n", circuit.c_str(),
              net.inputs().size(), net.num_gates());
  const std::vector<InputProbs> tuples = neighbor_workload(net, max_tuples);

  EngineConfig cfg;
  cfg.monte_carlo.num_patterns = 20'000;
  cfg.monte_carlo.seed = 1985;

  TextTable table({"engine", "tuples", "single (s)", "batch (s)", "speedup",
                   "|ref diff|"});
  for (const std::string& name : engines)
    run_engine(json, circuit, net, name, cfg, tuples, table);
  std::printf("%s", table.str().c_str());
}

}  // namespace
}  // namespace protest

int main() {
  using namespace protest;
  bench::print_header(
      "engine batching: signal_probs_batch vs N single calls");
  bench::BenchJson json("engine_batch");
  // The acceptance workload: a full ALU hill-climb neighborhood.
  run_circuit(json, "alu", 1 + 14 * 8, {"protest", "naive", "monte-carlo"});
  // The 16-bit divider is 23x larger per tuple, so the workload is capped
  // at a 65-tuple slice of the neighborhood to keep the run short.
  run_circuit(json, "div", 65, {"protest", "naive", "monte-carlo"});
  json.write();
  return 0;
}
