// Figure 6: correlation diagram for MULT.  The paper's plot sits visibly
// *above* the diagonal — "in general P_SIM is higher than P_PROT", the
// systematic under-estimation caused by the simple signal-flow model
// ignoring simultaneous multi-path sensitization.
#include <cstring>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "circuits/zoo.hpp"

int main(int argc, char** argv) {
  using namespace protest;
  const bool dump = argc > 1 && std::strcmp(argv[1], "--data") == 0;

  const Netlist net = make_circuit("mult");
  const Protest tool(net);
  const auto report = tool.analyze(uniform_input_probs(net, 0.5));
  const PatternSet ps = PatternSet::random(net.inputs().size(), 100'000, 1985);
  const auto psim =
      tool.fault_simulate(ps, FaultSimMode::CountDetections).detection_probs();

  if (dump) {
    std::printf("# P_PROT P_SIM (MULT, one line per fault)\n%s",
                scatter_series(report.detection_probs, psim).c_str());
    return 0;
  }
  bench::print_header("Fig. 6: correlation diagram for MULT (P_PROT vs P_SIM)");
  const ErrorStats s = compare_estimates(report.detection_probs, psim);
  std::printf("%s", ascii_scatter(report.detection_probs, psim).c_str());
  std::printf("\n%zu faults; C = %.3f (paper: 0.90); Delta = %.3f (paper 0.11)\n",
              s.count, s.correlation, s.mean_abs_error);
  std::printf("signed bias (est - sim) = %+.3f -> under-estimation, as in the paper\n",
              s.mean_signed_error);
  std::printf("(run with --data for the raw scatter series)\n");
  return 0;
}
