// google-benchmark micro kernels for the expensive primitives: logic
// simulation, fault simulation, signal-probability estimation (naive vs
// PROTEST conditioning), observability, SCOAP and BDD construction.
#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "circuits/zoo.hpp"
#include "measures/scoap.hpp"
#include "observe/observability.hpp"
#include "prob/engine.hpp"
#include "prob/exact.hpp"
#include "prob/naive.hpp"
#include "protest/protest.hpp"
#include "sim/fault_sim.hpp"
#include "sim/logic_sim.hpp"

namespace protest {
namespace {

const Netlist& circuit(const std::string& name) {
  static std::map<std::string, Netlist> cache;
  auto it = cache.find(name);
  if (it == cache.end()) it = cache.emplace(name, make_circuit(name)).first;
  return it->second;
}

void BM_LogicSim64(benchmark::State& state, const std::string& name) {
  const Netlist& net = circuit(name);
  const PatternSet ps = PatternSet::random(net.inputs().size(), 64, 1);
  BlockSimulator sim(net);
  for (auto _ : state) benchmark::DoNotOptimize(sim.run(ps, 0));
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_FaultSim(benchmark::State& state, const std::string& name) {
  const Netlist& net = circuit(name);
  const auto faults = collapsed_fault_list(net);
  const PatternSet ps = PatternSet::random(net.inputs().size(), 256, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        simulate_faults(net, faults, ps, FaultSimMode::CountDetections));
  state.SetItemsProcessed(state.iterations() * 256 * faults.size());
}

void BM_NaiveProbs(benchmark::State& state, const std::string& name) {
  const Netlist& net = circuit(name);
  const auto ip = uniform_input_probs(net, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(naive_signal_probs(net, ip));
}

void BM_ProtestEstimator(benchmark::State& state, const std::string& name) {
  const Netlist& net = circuit(name);
  const ProtestEngine est(net);
  const auto ip = uniform_input_probs(net, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(est.signal_probs(ip));
}

void BM_ProtestBatch16(benchmark::State& state, const std::string& name) {
  const Netlist& net = circuit(name);
  const ProtestEngine est(net);
  std::vector<InputProbs> batch(16, uniform_input_probs(net, 0.5));
  for (std::size_t t = 0; t < batch.size(); ++t)
    batch[t][t % batch[t].size()] = 0.25;
  for (auto _ : state) benchmark::DoNotOptimize(est.signal_probs_batch(batch));
  state.SetItemsProcessed(state.iterations() * 16);
}

void BM_Observability(benchmark::State& state, const std::string& name) {
  const Netlist& net = circuit(name);
  const auto p = naive_signal_probs(net, uniform_input_probs(net, 0.5));
  for (auto _ : state) benchmark::DoNotOptimize(compute_observability(net, p));
}

void BM_Scoap(benchmark::State& state, const std::string& name) {
  const Netlist& net = circuit(name);
  for (auto _ : state) benchmark::DoNotOptimize(compute_scoap(net));
}

void BM_BddBuild(benchmark::State& state, const std::string& name) {
  const Netlist& net = circuit(name);
  for (auto _ : state) {
    Bdd bdd(static_cast<unsigned>(net.inputs().size()), 4'000'000);
    benchmark::DoNotOptimize(build_node_bdds(net, bdd));
  }
}

}  // namespace
}  // namespace protest

int main(int argc, char** argv) {
  using namespace protest;
  auto reg = [](const std::string& prefix, const std::string& name, auto fn) {
    benchmark::RegisterBenchmark(
        (prefix + "/" + name).c_str(),
        [fn, name](benchmark::State& s) { fn(s, name); });
  };
  for (const char* name : {"c17", "alu", "comp", "mult", "div"}) {
    reg("LogicSim64", name, BM_LogicSim64);
    reg("NaiveProbs", name, BM_NaiveProbs);
    reg("ProtestEstimator", name, BM_ProtestEstimator);
    reg("ProtestBatch16", name, BM_ProtestBatch16);
    reg("Observability", name, BM_Observability);
    reg("Scoap", name, BM_Scoap);
  }
  for (const char* name : {"c17", "alu", "comp"}) reg("FaultSim", name, BM_FaultSim);
  // comp is omitted: with the netlist input order (A0..A23 then B0..B23)
  // the comparator BDD is exponential — the textbook bad-order example.
  for (const char* name : {"c17", "alu"}) reg("BddBuild", name, BM_BddBuild);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
