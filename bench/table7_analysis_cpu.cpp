// Table 7: CPU time of the PROTEST analysis as a function of circuit size,
// plus the estimated test-set size.  Paper (SIEMENS 7561, ~2.4 MIPS):
//
//   | transistors | estimated test size | CPU (s) |
//   | 368         | 594                 | 0.4     |
//   | 1 274       | 7 800*              | 0.7     |   (* OCR of the paper
//   | 2 496       | 120 000 000         | 1.0     |      is partly garbled;
//   | 26 450      | 3 250*              | 23.0    |      magnitudes only)
//   | 47 636      | 8 284 000           | 41.0    |
//
// Shape: analysis time grows near-linearly with transistor count; test
// sizes vary wildly with circuit structure, not size.  Our absolute times
// are ~10^3-10^4x smaller (2026 hardware vs 2.4 MIPS).
#include "bench_util.hpp"
#include "circuits/zoo.hpp"
#include "netlist/tech.hpp"

int main() {
  using namespace protest;
  bench::print_header("Table 7: CPU time for the analysis");

  TextTable t({"circuit", "transistors", "gates", "est. test size (d=.98,e=.95)",
               "CPU (s)", "paper CPU (s)"});
  const double paper_cpu[] = {0.4, 0.7, 1.0, 5.0, 10.0, 23.0, 41.0};
  int row = 0;
  for (const std::string& name : scaling_family()) {
    const Netlist net = make_circuit(name);
    const Protest tool(net);
    ProtestReport report;
    const double secs = bench::time_seconds([&] {
      report = tool.analyze(uniform_input_probs(net, 0.5));
    });
    const auto pf = bench::detectable(report.detection_probs);
    const std::uint64_t n = required_test_length(pf, 0.98, 0.95);
    t.add_row({name, fmt_int(transistor_count(net)), fmt_int(net.num_gates()),
               bench::fmt_testlen(n), fmt(secs, 3),
               row < 7 ? fmt(paper_cpu[row], 1) : std::string("-")});
    ++row;
  }
  std::printf("%s", t.str().c_str());
  std::printf("\npaper rows (transistors -> CPU s): 368->0.4, 1 274->0.7, "
              "2 496->1.0, 26 450->23.0, 47 636->41.0 on a 2.4 MIPS machine;\n"
              "the property to reproduce is near-linear growth in circuit "
              "size.\n");
  return 0;
}
