// Table 3: required random-pattern counts for the random-pattern-resistant
// circuits DIV and COMP at conventional p = 0.5, over the (d, e) grid.
// Paper values:
//
//   | d    | e     | N(DIV)  | N(COMP)     |
//   | 1.0  | 0.95  | 499 960 | 292 808 220 |
//   | 1.0  | 0.98  | 614 590 | 355 083 821 |
//   | 1.0  | 0.999 | 966 967 | 556 622 443 |
//   | 0.98 | 0.95  | 491 827 | 247 142 478 |
//   | 0.98 | 0.98  | 608 900 | 309 063 047 |
//   | 0.98 | 0.999 | 965 591 | 510 127 655 |
//
// The shape to reproduce: N(COMP) >> N(DIV) >> any practical budget, with
// e mattering much less than the hardest fault's detection probability.
#include "bench_util.hpp"
#include "circuits/zoo.hpp"

int main() {
  using namespace protest;
  bench::print_header("Table 3: size of test sets at p = 0.5 (not optimized)");

  const std::uint64_t paper[2][3][2] = {
      {{499'960, 292'808'220}, {614'590, 355'083'821}, {966'967, 556'622'443}},
      {{491'827, 247'142'478}, {608'900, 309'063'047}, {965'591, 510'127'655}}};

  const Netlist div = make_circuit("div");
  const Netlist comp = make_circuit("comp");
  const Protest tool_div(div), tool_comp(comp);
  const auto pf_div = bench::detectable(
      tool_div.analyze(uniform_input_probs(div, 0.5)).detection_probs);
  const auto pf_comp = bench::detectable(
      tool_comp.analyze(uniform_input_probs(comp, 0.5)).detection_probs);

  TextTable t({"d", "e", "N(DIV) paper", "N(DIV) ours", "N(COMP) paper",
               "N(COMP) ours"});
  const double ds[2] = {1.0, 0.98};
  const double es[3] = {0.95, 0.98, 0.999};
  for (int di = 0; di < 2; ++di)
    for (int ei = 0; ei < 3; ++ei) {
      const std::uint64_t n_div = required_test_length(pf_div, ds[di], es[ei]);
      const std::uint64_t n_comp = required_test_length(pf_comp, ds[di], es[ei]);
      t.add_row({fmt(ds[di], 2), fmt(es[ei], 3), fmt_int(paper[di][ei][0]),
                 bench::fmt_testlen(n_div), fmt_int(paper[di][ei][1]),
                 bench::fmt_testlen(n_comp)});
    }
  std::printf("%s", t.str().c_str());
  std::printf("\n(\"ours\" computed over estimated-detectable faults; the paper: "
              "\"these large pattern sets cause random pattern testing to "
              "become uneconomical\")\n");
  return 0;
}
