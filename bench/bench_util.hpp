// Shared helpers for the table/figure reproduction harnesses.  Every bench
// binary prints the paper's published rows next to our measured ones; the
// goal is matching *shape* (who wins, rough factors, crossovers), not the
// authors' absolute 1985 numbers.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "protest/protest.hpp"
#include "testlen/test_length.hpp"

namespace protest::bench {

/// Wall-clock seconds of a callable.
template <typename F>
double time_seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

inline std::string fmt_testlen(std::uint64_t n) {
  return n == kInfiniteTestLength ? "inf" : fmt_int(n);
}

/// Detection probabilities restricted to estimated-detectable faults
/// (drops exact zeros: structurally unobservable/untestable faults, which
/// the paper's finite d=1.0 rows implicitly exclude).
inline std::vector<double> detectable(const std::vector<double>& pf) {
  std::vector<double> out;
  out.reserve(pf.size());
  for (double p : pf)
    if (p > 0.0) out.push_back(p);
  return out;
}

inline void print_header(const char* what) {
  std::printf("==================================================================\n");
  std::printf("PROTEST reproduction — %s\n", what);
  std::printf("==================================================================\n");
}

}  // namespace protest::bench
