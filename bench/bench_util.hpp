// Shared helpers for the table/figure reproduction harnesses.  Every bench
// binary prints the paper's published rows next to our measured ones; the
// goal is matching *shape* (who wins, rough factors, crossovers), not the
// authors' absolute 1985 numbers.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "protest/protest.hpp"
#include "testlen/test_length.hpp"

namespace protest::bench {

/// Wall-clock seconds of a callable.
template <typename F>
double time_seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

inline std::string fmt_testlen(std::uint64_t n) {
  return n == kInfiniteTestLength ? "inf" : fmt_int(n);
}

/// Detection probabilities restricted to estimated-detectable faults
/// (drops exact zeros: structurally unobservable/untestable faults, which
/// the paper's finite d=1.0 rows implicitly exclude).
inline std::vector<double> detectable(const std::vector<double>& pf) {
  std::vector<double> out;
  out.reserve(pf.size());
  for (double p : pf)
    if (p > 0.0) out.push_back(p);
  return out;
}

inline void print_header(const char* what) {
  std::printf("==================================================================\n");
  std::printf("PROTEST reproduction — %s\n", what);
  std::printf("==================================================================\n");
}

/// Machine-readable companion to the printed tables: collects flat
/// key -> number metrics and writes them as BENCH_<name>.json in the
/// working directory, so perf claims (e.g. the batching speedup) are
/// recorded per run and diffable across commits.  Keys are dot-joined
/// plain identifiers ("alu.protest.batch_seconds") — no escaping needed.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Writes the file; returns false (and warns on stderr) on I/O failure.
  bool write() const {
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path().c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {\n",
                 name_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i)
      std::fprintf(f, "    \"%s\": %.9g%s\n", metrics_[i].first.c_str(),
                   metrics_[i].second, i + 1 < metrics_.size() ? "," : "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu metrics)\n", path().c_str(), metrics_.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace protest::bench
