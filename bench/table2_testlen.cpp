// Table 2: size of the random test set for ALU and MULT at d = e = 0.98,
// validated by fault simulation (paper: N = 212 / 607, simulated coverage
// 99.9..100%).
#include "bench_util.hpp"
#include "circuits/zoo.hpp"

int main() {
  using namespace protest;
  bench::print_header("Table 2: size of test sets (d = 0.98, e = 0.98)");

  struct PaperRow {
    const char* name;
    std::uint64_t paper_n;
  };
  TextTable t({"circuit", "N (paper)", "N (ours)", "simulated coverage of",
               "full-set coverage"});
  for (const PaperRow row : {PaperRow{"alu", 212}, PaperRow{"mult", 607}}) {
    const Netlist net = make_circuit(row.name);
    const Protest tool(net);
    const auto report = tool.analyze(uniform_input_probs(net, 0.5));
    const std::uint64_t n = tool.test_length(report, 0.98, 0.98);

    // Validation exactly like the paper: create pattern sets of size N and
    // fault-simulate.  Coverage is reported over detectable faults (oracle:
    // a long reference run), like the paper's 99.9-100% figures.
    const PatternSet set = tool.generate_patterns(
        report.input_probs, static_cast<std::size_t>(n), 77);
    const auto sim = tool.fault_simulate(set, FaultSimMode::FirstDetection);
    const PatternSet oracle_ps =
        net.inputs().size() <= 16
            ? PatternSet::exhaustive(net.inputs().size())
            : PatternSet::random(net.inputs().size(), 200'000, 3);
    const auto oracle =
        tool.fault_simulate(oracle_ps, FaultSimMode::FirstDetection);
    std::size_t detectable = 0, detected = 0;
    for (std::size_t i = 0; i < tool.faults().size(); ++i) {
      if (oracle.first_detect[i] < 0) continue;
      ++detectable;
      detected += sim.first_detect[i] >= 0;
    }
    const double cov_detectable =
        100.0 * static_cast<double>(detected) / static_cast<double>(detectable);
    t.add_row({row.name, fmt_int(row.paper_n), bench::fmt_testlen(n),
               fmt(cov_detectable, 1) + " % of detectable",
               fmt(100.0 * sim.coverage(), 1) + " % of all"});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\npaper validation: \"fault simulation had reached a coverage of"
              " 99.9 - 100%%\" with sets of the required size.\n");
  return 0;
}
