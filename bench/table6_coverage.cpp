// Table 6: fault coverage by simulation of random patterns — DIV and COMP,
// conventional p = 0.5 vs PROTEST-optimized probabilities, for growing
// pattern counts.  Paper values (%):
//
//   | patterns | DIV not opt | DIV opt | COMP not opt | COMP opt |
//   | 10       | 18.8        | 26.1    | 32.1         | 44.5     |
//   | 100      | 56.5        | 66.3    | 70.4         | 72.7     |
//   | 1000     | 69.1        | 94.6    | 75.8         | 95.4     |
//   | 2000     | 71.4        | 98.5    | 76.5         | 97.2     |
//   | ...      | plateau     | ~99.7   | plateau      | ~99.7    |
//
// Shape: the uniform curves plateau far below the optimized ones.
#include "bench_util.hpp"
#include "circuits/zoo.hpp"

namespace protest {
namespace {

struct Curves {
  FaultSimResult uniform, optimized;
};

Curves run(const char* name) {
  const Netlist net = make_circuit(name);
  ProtestOptions popts;
  popts.universe = FaultUniverse::Collapsed;
  popts.estimator.maxvers = 2;  // cheap gradient config (see table5)
  popts.estimator.maxlist = 8;
  popts.estimator.max_candidates = 8;
  const Protest tool(net, popts);

  HillClimbOptions opts;
  opts.max_sweeps = 4;
  const HillClimbResult res = tool.optimize(10'000, opts);

  const std::size_t total = 12'000;
  Curves c;
  c.uniform = tool.fault_simulate(
      tool.generate_patterns(uniform_input_probs(net, 0.5), total, 6),
      FaultSimMode::FirstDetection);
  c.optimized = tool.fault_simulate(tool.generate_patterns(res.probs, total, 6),
                                    FaultSimMode::FirstDetection);
  return c;
}

}  // namespace
}  // namespace protest

int main() {
  using namespace protest;
  bench::print_header("Table 6: fault coverage vs pattern count (simulated)");

  const double paper[14][4] = {
      {18.8, 26.1, 32.1, 44.5}, {56.5, 66.3, 70.4, 72.7},
      {69.1, 94.6, 75.8, 95.4}, {71.4, 98.5, 76.5, 97.2},
      {73.2, 99.0, 77.2, 98.3}, {74.7, 99.1, 79.6, 99.4},
      {76.8, 99.1, 80.0, 99.4}, {77.2, 99.4, 80.4, 99.4},
      {77.2, 99.4, 80.4, 99.5}, {77.2, 99.6, 80.5, 99.5},
      {77.2, 99.7, 80.5, 99.5}, {77.2, 99.7, 80.6, 99.7},
      {77.2, 99.7, 80.6, 99.7}, {77.2, 99.7, 80.7, 99.7}};
  const std::size_t counts[14] = {10,   100,  1000, 2000, 3000, 4000, 5000,
                                  6000, 7000, 8000, 9000, 10000, 11000, 12000};

  const Curves div = run("div");
  const Curves comp = run("comp");

  TextTable t({"patterns", "DIV p=.5 (paper)", "DIV p=.5", "DIV opt (paper)",
               "DIV opt", "COMP p=.5 (paper)", "COMP p=.5",
               "COMP opt (paper)", "COMP opt"});
  for (int r = 0; r < 14; ++r) {
    const std::size_t n = counts[r];
    t.add_row({fmt_int(n), fmt(paper[r][0], 1),
               fmt(100 * div.uniform.coverage_at(n), 1), fmt(paper[r][1], 1),
               fmt(100 * div.optimized.coverage_at(n), 1), fmt(paper[r][2], 1),
               fmt(100 * comp.uniform.coverage_at(n), 1), fmt(paper[r][3], 1),
               fmt(100 * comp.optimized.coverage_at(n), 1)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\npaper: \"conventional random pattern test yields very "
              "insufficient results whereas the pattern sets proposed by "
              "PROTEST detect nearly all faults.\"\n");
  return 0;
}
