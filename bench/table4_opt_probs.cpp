// Table 4: optimized input signal probabilities for the 51 primary inputs
// of COMP.  The paper's weights all lie on the k/16 grid and push the
// high-order bits toward extreme values (0.88/0.94) so that the equality
// chains stay alive; TI inputs sit near 0.63.  Exact per-pin weights are
// not expected to match (our cascade is a behavioural reconstruction of
// fig. 7) — the shape is: far from 0.5, on-grid, A/B pairs balanced.
#include <cmath>

#include "bench_util.hpp"
#include "circuits/zoo.hpp"

int main() {
  using namespace protest;
  bench::print_header("Table 4: optimized signal probabilities for COMP");

  // Paper's Table 4, keyed by input name.
  const std::pair<const char*, double> paper[] = {
      {"A0", 0.63}, {"B0", 0.56}, {"A1", 0.69}, {"B1", 0.75}, {"A2", 0.38},
      {"B2", 0.38}, {"A3", 0.31}, {"B3", 0.31}, {"A4", 0.13}, {"B4", 0.13},
      {"A5", 0.94}, {"B5", 0.88}, {"A6", 0.88}, {"B6", 0.88}, {"A7", 0.88},
      {"B7", 0.88}, {"A8", 0.88}, {"B8", 0.94}, {"A9", 0.94}, {"B9", 0.94},
      {"A10", 0.88}, {"B10", 0.88}, {"A11", 0.88}, {"B11", 0.94},
      {"A12", 0.88}, {"B12", 0.88}, {"A13", 0.88}, {"B13", 0.94},
      {"A14", 0.94}, {"B14", 0.94}, {"A15", 0.94}, {"B15", 0.94},
      {"A16", 0.88}, {"B16", 0.88}, {"A17", 0.94}, {"B17", 0.94},
      {"A18", 0.94}, {"B18", 0.88}, {"A19", 0.94}, {"B19", 0.94},
      {"A20", 0.94}, {"B20", 0.88}, {"A21", 0.94}, {"B21", 0.88},
      {"A22", 0.94}, {"B22", 0.94}, {"A23", 0.94}, {"B23", 0.88},
      {"TI1", 0.63}, {"TI2", 0.63}, {"TI3", 0.63}};

  const Netlist net = make_circuit("comp");
  ProtestOptions popts;
  popts.universe = FaultUniverse::Collapsed;
  const Protest tool(net, popts);
  HillClimbOptions opts;
  opts.max_sweeps = 6;
  const HillClimbResult res = tool.optimize(10'000, opts);

  TextTable t({"input", "paper", "ours", "input", "paper", "ours"});
  const auto inputs = net.inputs();
  auto ours_of = [&](const char* name) {
    for (std::size_t i = 0; i < inputs.size(); ++i)
      if (net.name_of(inputs[i]) == name) return res.probs[i];
    return -1.0;
  };
  for (std::size_t i = 0; i + 1 < std::size(paper); i += 2) {
    t.add_row({paper[i].first, fmt(paper[i].second, 2),
               fmt(ours_of(paper[i].first), 2), paper[i + 1].first,
               fmt(paper[i + 1].second, 2), fmt(ours_of(paper[i + 1].first), 2)});
  }
  t.add_row({paper[50].first, fmt(paper[50].second, 2),
             fmt(ours_of(paper[50].first), 2), "", "", ""});
  std::printf("%s", t.str().c_str());

  // Shape checks the paper calls out: "It is remarkable how much the
  // optimal input probabilities differ from the conventionally used 0.5".
  double mean_dist = 0.0;
  int on_grid = 0;
  for (double p : res.probs) {
    mean_dist += std::abs(p - 0.5);
    on_grid += std::abs(p * 16 - std::round(p * 16)) < 1e-9;
  }
  std::printf("\nmean |p - 0.5| = %.3f (paper's Table 4: 0.33); %d/%zu on the "
              "k/16 grid\n",
              mean_dist / static_cast<double>(res.probs.size()),
              on_grid, res.probs.size());
  std::printf("log J_N improved to %.2f after %zu objective evaluations\n",
              res.log_objective, res.evaluations);
  return 0;
}
