// Table 1: maximal error, average error (Delta) and correlation (C) of the
// PROTEST detection-probability estimates against fault simulation, for
// the ALU (SN74181) and MULT (A+B+C*D).  Paper values:
//
//   |      | Max  | Delta | C    |
//   | ALU  | 0.15 | 0.04  | 0.97 |
//   | MULT | 0.48 | 0.11  | 0.90 |
//
// Context rows: the SCOAP-based P_SCOAP baseline ([AgMe82]: correlation
// only ~0.4) and STAFAN, plus PROTEST under stem model A — the estimator
// configuration ablation DESIGN.md calls out.
#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "circuits/zoo.hpp"
#include "measures/scoap.hpp"
#include "measures/stafan.hpp"

namespace protest {
namespace {

struct Row {
  std::string label;
  ErrorStats stats;
};

void run_circuit(const std::string& name, double paper_max, double paper_delta,
                 double paper_c) {
  const Netlist net = make_circuit(name);
  const Protest tool(net);

  // P_SIM: exhaustive for the ALU (2^14), 100k random patterns for MULT.
  const PatternSet ps =
      net.inputs().size() <= 16
          ? PatternSet::exhaustive(net.inputs().size())
          : PatternSet::random(net.inputs().size(), 100'000, 1985);
  const auto psim =
      tool.fault_simulate(ps, FaultSimMode::CountDetections).detection_probs();

  std::vector<Row> rows;
  {
    const auto report = tool.analyze(uniform_input_probs(net, 0.5));
    rows.push_back({"PROTEST (model B)",
                    compare_estimates(report.detection_probs, psim)});
  }
  {
    ProtestOptions o;
    o.observability.stem = StemModel::XorChain;
    const Protest tool_a(net, o);
    const auto report = tool_a.analyze(uniform_input_probs(net, 0.5));
    rows.push_back({"PROTEST (model A)",
                    compare_estimates(report.detection_probs, psim)});
  }
  {
    // Cross-engine validation: same observability pipeline, but signal
    // probabilities from the independence-propagation engine instead of
    // the paper's estimator.
    ProtestOptions o;
    o.engine = "naive";
    const Protest tool_n(net, o);
    const auto report = tool_n.analyze(uniform_input_probs(net, 0.5));
    rows.push_back({"naive engine [AgAg75]",
                    compare_estimates(report.detection_probs, psim)});
  }
  {
    const auto m = compute_scoap(net);
    rows.push_back({"P_SCOAP [AgMe82]",
                    compare_estimates(
                        pscoap_detection_probs(net, tool.faults(), m), psim)});
  }
  {
    const auto m = compute_stafan(
        net, PatternSet::random(net.inputs().size(), 20'000, 7));
    rows.push_back({"STAFAN [AgJa84]",
                    compare_estimates(
                        stafan_detection_probs(net, tool.faults(), m), psim)});
  }

  std::printf("\n%s (%zu faults, %zu patterns for P_SIM)\n", name.c_str(),
              tool.faults().size(), ps.num_patterns());
  TextTable t({"estimator", "Max", "Delta", "C", "signed bias"});
  t.add_row({"paper: PROTEST", fmt(paper_max, 2), fmt(paper_delta, 2),
             fmt(paper_c, 2), "(P_SIM >= P_PROT)"});
  for (const Row& r : rows)
    t.add_row({r.label, fmt(r.stats.max_abs_error, 2),
               fmt(r.stats.mean_abs_error, 2), fmt(r.stats.correlation, 2),
               fmt(r.stats.mean_signed_error, 3)});
  std::printf("%s", t.str().c_str());
}

}  // namespace
}  // namespace protest

int main() {
  using namespace protest;
  bench::print_header("Table 1: estimate-vs-simulation errors and correlation");
  run_circuit("alu", 0.15, 0.04, 0.97);
  run_circuit("mult", 0.48, 0.11, 0.90);
  return 0;
}
