// Static fault analysis on the stress tier: what fraction of the
// collapsed fault list the analyzer settles without simulating a single
// pattern, what it costs, and how much the proven-undetectable prune
// saves the fault simulator.
//
// The stress family is genuinely redundancy-rich (random gate soup breeds
// constant nodes and blocked cones), so the prune is measured directly on
// it: plain vs pruned FirstDetection runs — never-detected faults stay
// live through every pattern block in the plain run, which is exactly the
// cost the static proof removes.
//
// Emits BENCH_fault_static.json.  Exits nonzero if the analysis is caught
// lying: a proven-undetectable fault the plain simulator detects, a
// pruned run whose first-detect disagrees with the plain run anywhere
// else, or a CountDetections estimate outside its static interval
// (simulate_faults_pruned's built-in 6-sigma oracle).  Optional
// --min-settled / --min-speedup floors serve as CI regression guards.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "circuits/random_circuit.hpp"
#include "lint/fault_analyze.hpp"
#include "sim/fault_sim.hpp"

namespace protest {
namespace {

/// Best-of-`reps` wall time of `f` (min damps scheduler noise).
template <typename F>
double best_seconds(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, bench::time_seconds(f));
  return best;
}

}  // namespace
}  // namespace protest

int main(int argc, char** argv) {
  using namespace protest;

  bool quick = false;
  double min_settled = 0.0;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--min-settled") == 0 && i + 1 < argc) {
      min_settled = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--min-settled X] [--min-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header("static fault analysis: settlement and sim pruning");
  bench::BenchJson json("fault_static");
  json.metric("quick", quick ? 1.0 : 0.0);

  const std::size_t num_gates = quick ? 10'000 : 100'000;
  const Netlist net = make_random_circuit(stress_circuit_params(num_gates));
  const std::vector<Fault> faults = collapsed_fault_list(net);
  std::printf("\ncircuit: %zu inputs, %zu gates; %zu collapsed faults\n",
              net.inputs().size(), net.num_gates(), faults.size());
  json.metric("circuit.gates", static_cast<double>(net.num_gates()));
  json.metric("circuit.faults", static_cast<double>(faults.size()));

  // --- static settlement ----------------------------------------------------
  FaultAnalysis fa;
  const double t_analyze =
      bench::time_seconds([&] { fa = analyze_faults(net, faults); });
  json.metric("analyze.seconds", t_analyze);
  json.metric("analyze.faults_per_sec",
              t_analyze > 0.0 ? static_cast<double>(faults.size()) / t_analyze
                              : 0.0);
  json.metric("analyze.settled_fraction", fa.settled_fraction());
  json.metric("analyze.proven_undetectable",
              static_cast<double>(fa.undetectable));
  json.metric("analyze.unexcitable", static_cast<double>(fa.unexcitable));
  json.metric("analyze.unobservable", static_cast<double>(fa.unobservable));
  json.metric("analyze.proven_detectable", static_cast<double>(fa.detectable));
  json.metric("analyze.uncertain", static_cast<double>(fa.uncertain));
  json.metric("analyze.truncated_sweeps",
              static_cast<double>(fa.truncated_sweeps));
  json.metric("analyze.learned_constants",
              static_cast<double>(fa.learned_constants));
  TextTable census({"class", "faults", "fraction"});
  const auto frac = [&](std::size_t n) {
    return fmt(static_cast<double>(n) / static_cast<double>(faults.size()), 3);
  };
  census.add_row({"proven undetectable", fmt_int(fa.undetectable),
                  frac(fa.undetectable)});
  census.add_row({"  unexcitable", fmt_int(fa.unexcitable),
                  frac(fa.unexcitable)});
  census.add_row({"  unobservable", fmt_int(fa.unobservable),
                  frac(fa.unobservable)});
  census.add_row({"proven detectable", fmt_int(fa.detectable),
                  frac(fa.detectable)});
  census.add_row({"uncertain", fmt_int(fa.uncertain), frac(fa.uncertain)});
  std::printf("%s", census.str().c_str());
  std::printf("analysis: %.2fs, settled statically: %.1f %%\n", t_analyze,
              100.0 * fa.settled_fraction());

  // --- fault-sim pruning ----------------------------------------------------
  const std::size_t num_patterns = quick ? 4096 : 16384;
  const int reps = quick ? 1 : 3;
  const PatternSet ps =
      PatternSet::random(net.inputs().size(), num_patterns, /*seed=*/1985);
  json.metric("fault_sim.patterns", static_cast<double>(num_patterns));
  FaultSimResult plain, pruned;
  const double t_plain = best_seconds(reps, [&] {
    plain = simulate_faults(net, faults, ps, FaultSimMode::FirstDetection);
  });
  const double t_pruned = best_seconds(reps, [&] {
    pruned =
        simulate_faults_pruned(net, faults, ps, FaultSimMode::FirstDetection, fa);
  });
  const double speedup = t_pruned > 0.0 ? t_plain / t_pruned : 0.0;
  json.metric("fault_sim.plain_seconds", t_plain);
  json.metric("fault_sim.pruned_seconds", t_pruned);
  json.metric("fault_sim.pruning_speedup", speedup);
  json.metric("fault_sim.coverage", plain.coverage());
  std::printf(
      "first-detection sim over %zu patterns: plain %.3fs, pruned %.3fs "
      "(%.2fx), coverage %.3f\n",
      num_patterns, t_plain, t_pruned, speedup, plain.coverage());

  // --- soundness gates ------------------------------------------------------
  // 1. The plain simulator must agree fault-by-fault: proven-undetectable
  //    faults are never detected, everything else is bit-identical.
  std::size_t contradicted = 0, mismatched = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (fa.bounds[i].verdict == FaultClass::ProvenUndetectable) {
      if (plain.first_detect[i] >= 0) ++contradicted;
    } else if (plain.first_detect[i] != pruned.first_detect[i]) {
      ++mismatched;
    }
  }
  json.metric("soundness.undetectable_contradicted",
              static_cast<double>(contradicted));
  json.metric("soundness.first_detect_mismatches",
              static_cast<double>(mismatched));

  // 2. The 6-sigma interval oracle on a CountDetections run (a subset
  //    keeps the quadratic-ish count mode affordable at full size).
  const std::size_t subset = std::min<std::size_t>(faults.size(), 20'000);
  const std::span<const Fault> sub_faults =
      std::span<const Fault>(faults).first(subset);
  FaultAnalysis sub_fa;
  sub_fa.bounds.assign(fa.bounds.begin(),
                       fa.bounds.begin() + static_cast<std::ptrdiff_t>(subset));
  const PatternSet count_ps =
      PatternSet::random(net.inputs().size(), quick ? 1024 : 2048, 7);
  bool oracle_ok = true;
  std::string oracle_msg;
  try {
    simulate_faults_pruned(net, sub_faults, count_ps,
                           FaultSimMode::CountDetections, sub_fa);
  } catch (const std::exception& e) {
    oracle_ok = false;
    oracle_msg = e.what();
  }
  json.metric("soundness.interval_oracle_ok", oracle_ok ? 1.0 : 0.0);
  std::printf("soundness: %zu contradicted, %zu mismatched, oracle %s\n",
              contradicted, mismatched, oracle_ok ? "PASS" : "FAIL");

  json.write();

  if (contradicted != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu proven-undetectable fault(s) detected by the "
                 "plain simulator\n",
                 contradicted);
    return 1;
  }
  if (mismatched != 0) {
    std::fprintf(stderr,
                 "FAIL: pruned first-detect diverges from plain on %zu "
                 "fault(s)\n",
                 mismatched);
    return 1;
  }
  if (!oracle_ok) {
    std::fprintf(stderr, "FAIL: interval oracle: %s\n", oracle_msg.c_str());
    return 1;
  }
  if (min_settled > 0.0 && fa.settled_fraction() < min_settled) {
    std::fprintf(stderr, "FAIL: settled fraction %.3f below floor %.3f\n",
                 fa.settled_fraction(), min_settled);
    return 1;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: pruning speedup %.2fx below floor %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
