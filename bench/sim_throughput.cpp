// Raw simulation throughput of the compiled columnar core vs the legacy
// Gate-struct walker on the 100k-gate stress circuit: gate-evaluations/sec
// and Mpatterns/sec per word width, plus .bench write/parse rates for the
// same netlist.  Single-threaded by design — this measures the inner loop
// the Monte-Carlo shards and the fault simulator sit on, and thread
// scaling is bench_parallel_eval's job.
//
// Emits BENCH_sim_throughput.json.  Exits nonzero if compiled-vs-legacy
// parity is violated (max diff must be exactly 0) or if the optional
// --min-gevals-per-sec / --min-speedup floors are not met — the CI release
// job runs `--quick` with conservative floors as a regression guard.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "circuits/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/compiled.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"
#include "sim/word_sim.hpp"

namespace protest {
namespace {

struct Rate {
  double seconds = 0.0;
  double gevals_per_sec = 0.0;
  double mpatterns_per_sec = 0.0;
};

Rate rate_of(double seconds, std::size_t gates, std::size_t patterns) {
  Rate r;
  r.seconds = seconds;
  if (seconds > 0.0) {
    r.gevals_per_sec =
        static_cast<double>(gates) * static_cast<double>(patterns) / seconds;
    r.mpatterns_per_sec = static_cast<double>(patterns) / seconds / 1e6;
  }
  return r;
}

/// Best-of-`reps` wall time of `f` (min damps scheduler noise).
template <typename F>
double best_seconds(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, bench::time_seconds(f));
  return best;
}

void record(bench::BenchJson& json, const std::string& key, const Rate& r) {
  json.metric(key + ".seconds", r.seconds);
  json.metric(key + ".gevals_per_sec", r.gevals_per_sec);
  json.metric(key + ".mpatterns_per_sec", r.mpatterns_per_sec);
}

/// Exact compiled-vs-legacy comparison over every node and block of `ps`:
/// returns the maximum |compiled - legacy| over all value words (0 or 1 —
/// any mismatching bit makes it 1).
std::uint64_t parity_max_diff(const Netlist& net, const PatternSet& ps,
                              std::size_t words) {
  LegacyBlockSimulator legacy(net);
  WordSimulator sim(net, words);
  std::uint64_t max_diff = 0;
  for (std::size_t b = 0; b < ps.num_blocks(); b += words) {
    const std::size_t count = std::min(words, ps.num_blocks() - b);
    sim.run_blocks(ps, b, count);
    for (std::size_t w = 0; w < count; ++w) {
      const auto& ref = legacy.run(ps, b + w);
      const std::uint64_t mask = ps.valid_mask(b + w);
      for (NodeId n = 0; n < net.size(); ++n)
        if (((sim.word(n, w) ^ ref[n]) & mask) != 0) max_diff = 1;
    }
  }
  return max_diff;
}

}  // namespace
}  // namespace protest

int main(int argc, char** argv) {
  using namespace protest;

  bool quick = false;
  double min_gevals = 0.0;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--min-gevals-per-sec") == 0 &&
               i + 1 < argc) {
      min_gevals = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--min-gevals-per-sec X] "
                   "[--min-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header("simulation throughput: compiled core vs legacy walker");
  bench::BenchJson json("sim_throughput");
  json.metric("hardware_threads",
              static_cast<double>(std::thread::hardware_concurrency()));
  json.metric("quick", quick ? 1.0 : 0.0);

  const std::size_t num_gates = 100'000;
  const Netlist net = make_random_circuit(stress_circuit_params(num_gates));
  const CompiledNetlist& cn = net.compiled();
  std::printf("\ncircuit: %zu inputs, %zu gates, depth %zu\n",
              net.inputs().size(), net.num_gates(),
              static_cast<std::size_t>(cn.depth()));
  json.metric("circuit.gates", static_cast<double>(net.num_gates()));
  json.metric("circuit.inputs", static_cast<double>(net.inputs().size()));
  json.metric("circuit.depth", static_cast<double>(cn.depth()));

  const std::size_t num_patterns = quick ? 64 * 64 : 64 * 512;
  const int reps = quick ? 1 : 3;
  const PatternSet ps = PatternSet::random(net.inputs().size(), num_patterns,
                                           /*seed=*/1985);
  const std::size_t gates = net.num_gates();

  // --- simulation throughput ------------------------------------------------
  TextTable table({"simulator", "seconds", "Gevals/s", "Mpat/s", "speedup"});
  LegacyBlockSimulator legacy(net);
  const Rate r_legacy = rate_of(
      best_seconds(reps,
                   [&] {
                     for (std::size_t b = 0; b < ps.num_blocks(); ++b)
                       legacy.run(ps, b);
                   }),
      gates, num_patterns);
  record(json, "legacy", r_legacy);
  table.add_row({"legacy (Gate walk)", fmt(r_legacy.seconds, 4),
                 fmt(r_legacy.gevals_per_sec / 1e9, 3),
                 fmt(r_legacy.mpatterns_per_sec, 3), "1.00x"});

  double best_gevals = 0.0;
  for (const std::size_t w : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                              std::size_t{16}}) {
    WordSimulator sim(net, w);
    const Rate r = rate_of(
        best_seconds(reps,
                     [&] {
                       for (std::size_t b = 0; b < ps.num_blocks(); b += w)
                         sim.run_blocks(ps, b,
                                        std::min(w, ps.num_blocks() - b));
                     }),
        gates, num_patterns);
    const std::string key = "compiled.w" + std::to_string(w);
    record(json, key, r);
    const double speedup =
        r.seconds > 0.0 ? r_legacy.seconds / r.seconds : 0.0;
    json.metric(key + ".speedup_vs_legacy", speedup);
    table.add_row({"compiled W=" + std::to_string(w), fmt(r.seconds, 4),
                   fmt(r.gevals_per_sec / 1e9, 3),
                   fmt(r.mpatterns_per_sec, 3), fmt(speedup, 2) + "x"});
    if (w >= 4) best_gevals = std::max(best_gevals, r.gevals_per_sec);
  }
  std::printf("%s", table.str().c_str());
  const double best_speedup =
      r_legacy.gevals_per_sec > 0.0 ? best_gevals / r_legacy.gevals_per_sec
                                    : 0.0;
  json.metric("best_w4plus.gevals_per_sec", best_gevals);
  json.metric("best_w4plus.speedup_vs_legacy", best_speedup);
  std::printf("best W>=4 vs legacy: %.2fx\n", best_speedup);

  // --- parity (exact) -------------------------------------------------------
  const PatternSet parity_ps =
      PatternSet::random(net.inputs().size(), quick ? 640 : 2048, 77);
  std::uint64_t max_diff = 0;
  for (const std::size_t w :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}, std::size_t{16}})
    max_diff = std::max(max_diff, parity_max_diff(net, parity_ps, w));
  json.metric("parity.max_diff", static_cast<double>(max_diff));
  std::printf("compiled-vs-legacy parity max diff: %llu\n",
              static_cast<unsigned long long>(max_diff));

  // --- .bench write/parse rate ---------------------------------------------
  std::string text;
  const double t_write =
      best_seconds(reps, [&] { text = write_bench_string(net); });
  Netlist reread;
  const double t_parse =
      best_seconds(reps, [&] { reread = read_bench_string(text); });
  const auto lines = static_cast<double>(
      std::count(text.begin(), text.end(), '\n'));
  json.metric("bench_io.lines", lines);
  json.metric("bench_io.write_seconds", t_write);
  json.metric("bench_io.parse_seconds", t_parse);
  json.metric("bench_io.parse_lines_per_sec",
              t_parse > 0.0 ? lines / t_parse : 0.0);
  std::printf("bench io: %.0f lines, write %.3fs, parse %.3fs (%.2fM lines/s)\n",
              lines, t_write, t_parse,
              t_parse > 0.0 ? lines / t_parse / 1e6 : 0.0);
  const bool stable = write_bench_string(reread) == text;
  json.metric("bench_io.roundtrip_stable", stable ? 1.0 : 0.0);

  json.write();

  if (max_diff != 0) {
    std::fprintf(stderr, "FAIL: compiled-vs-legacy outputs differ\n");
    return 1;
  }
  if (!stable) {
    std::fprintf(stderr, "FAIL: .bench round-trip not byte-stable\n");
    return 1;
  }
  if (min_gevals > 0.0 && best_gevals < min_gevals) {
    std::fprintf(stderr, "FAIL: best W>=4 rate %.3g gate-evals/s below floor %.3g\n",
                 best_gevals, min_gevals);
    return 1;
  }
  if (min_speedup > 0.0 && best_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: best W>=4 speedup %.2fx below floor %.2fx\n",
                 best_speedup, min_speedup);
    return 1;
  }
  return 0;
}
