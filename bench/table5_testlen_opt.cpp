// Table 5: required pattern counts for DIV and COMP *with optimized input
// probabilities* — the headline result.  Paper values:
//
//   | d    | e     | N(DIV) | N(COMP) |
//   | 1.0  | 0.95  |  6 066 |  8 932  |
//   | 1.0  | 0.98  |  6 866 | 10 284  |
//   | 1.0  | 0.999 | 10 063 | 14 911  |
//   | 0.98 | 0.95  |  5 097 |  6 828  |
//   | 0.98 | 0.98  |  5 780 |  7 767  |
//   | 0.98 | 0.999 |  8 052 | 10 893  |
//
// Shape: compared with Table 3, "the test length ... was reduced by
// several orders of magnitude".
#include "bench_util.hpp"
#include "circuits/zoo.hpp"

int main() {
  using namespace protest;
  bench::print_header("Table 5: test-set sizes with optimized probabilities");

  const std::uint64_t paper[2][3][2] = {
      {{6'066, 8'932}, {6'866, 10'284}, {10'063, 14'911}},
      {{5'097, 6'828}, {5'780, 7'767}, {8'052, 10'893}}};

  auto optimized_pf = [](const char* name, std::uint64_t n_param,
                         std::vector<double>* probs_out) {
    const Netlist net = make_circuit(name);
    // Climbing only needs a gradient signal: a cheap estimator
    // configuration makes the sweep ~10x faster at equal outcome.
    ProtestOptions popts;
    popts.universe = FaultUniverse::Collapsed;
    popts.estimator.maxvers = 2;
    popts.estimator.maxlist = 8;
    popts.estimator.max_candidates = 8;
    const Protest tool(net, popts);
    HillClimbOptions opts;
    opts.max_sweeps = 4;
    const HillClimbResult res = tool.optimize(n_param, opts);
    *probs_out = res.probs;
    // Detection probabilities of the *structural* list under the optimized
    // tuple with the full-precision estimator, matching Table 3's universe.
    const Protest full(net);
    return bench::detectable(full.analyze(res.probs).detection_probs);
  };

  std::vector<double> div_probs, comp_probs;
  const auto pf_div = optimized_pf("div", 10'000, &div_probs);
  const auto pf_comp = optimized_pf("comp", 10'000, &comp_probs);

  TextTable t({"d", "e", "N(DIV) paper", "N(DIV) ours", "N(COMP) paper",
               "N(COMP) ours"});
  const double ds[2] = {1.0, 0.98};
  const double es[3] = {0.95, 0.98, 0.999};
  for (int di = 0; di < 2; ++di)
    for (int ei = 0; ei < 3; ++ei) {
      const std::uint64_t n_div = required_test_length(pf_div, ds[di], es[ei]);
      const std::uint64_t n_comp = required_test_length(pf_comp, ds[di], es[ei]);
      t.add_row({fmt(ds[di], 2), fmt(es[ei], 3), fmt_int(paper[di][ei][0]),
                 bench::fmt_testlen(n_div), fmt_int(paper[di][ei][1]),
                 bench::fmt_testlen(n_comp)});
    }
  std::printf("%s", t.str().c_str());
  std::printf("\ncompare Table 3 (p = 0.5): the optimized tuples cut N by "
              "orders of magnitude, as in the paper.\n");
  return 0;
}
