// Table 8: CPU time of the input-probability optimization.  Paper:
//
//   | transistors | inputs | optim. test set | CPU (s) |
//   | 368         | 14     | 167             | 6.4     |
//   | 1 274       | 32     | 8 264           | 49.0    |
//   | 2 496       | 48     | 430 10*         | 152.0   |  (* garbled OCR)
//   | 26 450      | 32     | 1 178           | 2 181.0 |
//
// Shape: optimization is far more CPU-intensive than analysis and depends
// on the number of primary inputs as well as circuit size.
#include "bench_util.hpp"
#include "circuits/zoo.hpp"
#include "netlist/tech.hpp"

int main() {
  using namespace protest;
  bench::print_header("Table 8: CPU time for the optimization");

  TextTable t({"circuit", "transistors", "inputs", "optim. test size",
               "CPU (s)", "paper CPU (s)"});
  const double paper_cpu[] = {6.4, 49.0, 152.0, 2181.0};
  // The paper's Table 8 has four rows; we sweep the four smallest family
  // members plus one large one to show the growth law.
  const std::vector<std::string> circuits = {"alu", "comp", "mult", "div",
                                             "mult16"};
  int row = 0;
  for (const std::string& name : circuits) {
    const Netlist net = make_circuit(name);
    ProtestOptions popts;
    popts.universe = FaultUniverse::Collapsed;
    popts.estimator.maxvers = 2;  // cheap gradient config (see table5)
    popts.estimator.maxlist = 8;
    popts.estimator.max_candidates = 8;
    const Protest tool(net, popts);
    HillClimbOptions opts;
    opts.max_sweeps = 2;  // bounded sweep budget for the big circuits
    HillClimbResult res;
    const double secs =
        bench::time_seconds([&] { res = tool.optimize(10'000, opts); });
    const Protest full(net);
    const auto pf = bench::detectable(full.analyze(res.probs).detection_probs);
    const std::uint64_t n = required_test_length(pf, 0.98, 0.95);
    t.add_row({name, fmt_int(transistor_count(net)),
               std::to_string(net.inputs().size()), bench::fmt_testlen(n),
               fmt(secs, 2), row < 4 ? fmt(paper_cpu[row], 1) : std::string("-")});
    ++row;
  }
  std::printf("%s", t.str().c_str());
  std::printf("\npaper: optimization cost grows with both circuit size and "
              "input count — \"Here the effort depends on the number of "
              "primary inputs, too.\"\n");
  return 0;
}
