// Serial vs multi-threaded evaluation on the two hottest workloads:
//
//   * monte-carlo: MonteCarloEngine::compute with the pattern budget
//     sharded across N workers (counter-based per-shard RNG streams, so
//     the estimate is bit-identical to the serial run), and
//   * neighborhood: the hill climber's per-coordinate objective sweeps
//     (ObjectiveEvaluator::log_objectives_neighborhood) fanned across
//     per-worker engine clones via session perturb_screen_sweep.
//
// Emits BENCH_parallel_eval.json.  Targets (8 threads, >= 8 hardware
// threads): >= 3x on the divider Monte-Carlo workload, >= 2x on the
// divider objective neighborhood sweep, with zero result diff in both —
// the speedups are only reachable when the hardware actually has the
// cores (hardware_concurrency is recorded alongside).  Run with --quick
// for a CI smoke (tiny workload, still asserts the zero diff).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/zoo.hpp"
#include "optimize/objective.hpp"
#include "prob/engine.hpp"
#include "util/thread_pool.hpp"

namespace protest {
namespace {

constexpr unsigned kThreads = 8;
constexpr int kSteps[] = {8, -8, 4, -4, 2, -2, 1, -1};
constexpr unsigned kDen = 16;

/// Nonzero serial-vs-parallel diffs flip this; main() exits 1 so the CI
/// smoke run actually fails on a determinism regression.
bool g_determinism_ok = true;

std::vector<double> candidate_values() {
  std::vector<double> vals;
  for (int s : kSteps) {
    const int cand = 8 + s;
    if (cand < 1 || cand > static_cast<int>(kDen) - 1) continue;
    vals.push_back(static_cast<double>(cand) / kDen);
  }
  return vals;
}

double max_abs_diff(const std::vector<std::vector<double>>& a,
                    const std::vector<std::vector<double>>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a[i].size(); ++j)
      m = std::max(m, std::abs(a[i][j] - b[i][j]));
  return m;
}

void run_monte_carlo(bench::BenchJson& json, const std::string& circuit,
                     std::size_t num_patterns, std::size_t tuples) {
  const Netlist net = make_circuit(circuit);
  std::vector<InputProbs> batch;
  for (std::size_t t = 0; t < tuples; ++t)
    batch.push_back(uniform_input_probs(
        net, 0.25 + 0.5 * static_cast<double>(t) / static_cast<double>(tuples)));

  MonteCarloEngineParams params;
  params.num_patterns = num_patterns;
  params.parallel.num_threads = 1;
  const MonteCarloEngine serial(net, params);
  params.parallel.num_threads = kThreads;
  const MonteCarloEngine parallel(net, params);

  std::vector<std::vector<double>> serial_out, parallel_out;
  const double t_serial =
      bench::time_seconds([&] { serial_out = serial.signal_probs_batch(batch); });
  const double t_parallel = bench::time_seconds(
      [&] { parallel_out = parallel.signal_probs_batch(batch); });
  const double diff = max_abs_diff(serial_out, parallel_out);
  const double speedup = t_parallel > 0.0 ? t_serial / t_parallel : 0.0;

  std::printf("\n%s monte-carlo: %zu patterns x %zu tuples, %zu gates\n",
              circuit.c_str(), num_patterns, tuples, net.num_gates());
  TextTable t({"threads", "seconds", "speedup", "max |diff|"});
  t.add_row({"1", fmt(t_serial, 4), "1.00x", "0"});
  t.add_row({std::to_string(kThreads), fmt(t_parallel, 4),
             fmt(speedup, 2) + "x", fmt(diff, 3)});
  std::printf("%s", t.str().c_str());
  if (diff != 0.0) {
    std::printf("ERROR: sharded Monte-Carlo must be bit-identical!\n");
    g_determinism_ok = false;
  }

  json.metric(circuit + ".monte_carlo.patterns",
              static_cast<double>(num_patterns));
  json.metric(circuit + ".monte_carlo.serial_seconds", t_serial);
  json.metric(circuit + ".monte_carlo.parallel_seconds", t_parallel);
  json.metric(circuit + ".monte_carlo.speedup", speedup);
  json.metric(circuit + ".monte_carlo.max_diff", diff);
}

void run_neighborhood(bench::BenchJson& json, const std::string& circuit,
                      std::size_t max_coords) {
  const Netlist net = make_circuit(circuit);
  const std::size_t coords = std::min(max_coords, net.inputs().size());
  const InputProbs base = uniform_input_probs(net, 8.0 / kDen);
  const std::vector<double> cand = candidate_values();
  const std::vector<Fault> faults = structural_fault_list(net);
  const std::uint64_t n_param = 10'000;

  ParallelConfig one_thread;
  one_thread.num_threads = 1;
  ParallelConfig bench_threads;
  bench_threads.num_threads = kThreads;
  const ObjectiveEvaluator serial(net, faults, n_param, {}, {}, one_thread);
  const ObjectiveEvaluator parallel(net, faults, n_param, {}, {},
                                    bench_threads);

  std::vector<std::vector<double>> serial_vals, parallel_vals;
  const double t_serial = bench::time_seconds([&] {
    for (std::size_t i = 0; i < coords; ++i) {
      const auto nb = serial.log_objectives_neighborhood(base, i, cand);
      std::vector<double> vals = {nb.base};
      vals.insert(vals.end(), nb.candidates.begin(), nb.candidates.end());
      serial_vals.push_back(std::move(vals));
    }
  });
  const double t_parallel = bench::time_seconds([&] {
    for (std::size_t i = 0; i < coords; ++i) {
      const auto nb = parallel.log_objectives_neighborhood(base, i, cand);
      std::vector<double> vals = {nb.base};
      vals.insert(vals.end(), nb.candidates.begin(), nb.candidates.end());
      parallel_vals.push_back(std::move(vals));
    }
  });
  const double diff = max_abs_diff(serial_vals, parallel_vals);
  const double speedup = t_parallel > 0.0 ? t_serial / t_parallel : 0.0;
  const std::size_t tuples = coords * (cand.size() + 1);

  std::printf("\n%s neighborhood sweep: %zu coords x %zu candidates "
              "(%zu tuples), %zu faults\n",
              circuit.c_str(), coords, cand.size(), tuples, faults.size());
  TextTable t({"threads", "seconds", "speedup", "max objective diff"});
  t.add_row({"1", fmt(t_serial, 4), "1.00x", "0"});
  t.add_row({std::to_string(kThreads), fmt(t_parallel, 4),
             fmt(speedup, 2) + "x", fmt(diff, 3)});
  std::printf("%s", t.str().c_str());
  if (diff != 0.0) {
    std::printf("ERROR: the parallel sweep must match the serial path!\n");
    g_determinism_ok = false;
  }

  json.metric(circuit + ".neighborhood.tuples", static_cast<double>(tuples));
  json.metric(circuit + ".neighborhood.serial_seconds", t_serial);
  json.metric(circuit + ".neighborhood.parallel_seconds", t_parallel);
  json.metric(circuit + ".neighborhood.speedup", speedup);
  json.metric(circuit + ".neighborhood.max_objective_diff", diff);
}

}  // namespace
}  // namespace protest

int main(int argc, char** argv) {
  using namespace protest;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::print_header("parallel evaluation layer (serial vs 8 threads)");
  const unsigned hw = ParallelConfig{}.resolved();
  std::printf("hardware threads: %u (speedup targets assume >= %u)\n", hw,
              kThreads);
  bench::BenchJson json("parallel_eval");
  json.metric("hardware_threads", static_cast<double>(hw));
  json.metric("bench_threads", static_cast<double>(kThreads));
  if (quick) {
    // CI smoke: correctness (zero diff) on tiny workloads.
    run_monte_carlo(json, "alu", 20'000, 2);
    run_neighborhood(json, "alu", 2);
  } else {
    run_monte_carlo(json, "alu", 500'000, 8);
    run_monte_carlo(json, "div", 500'000, 4);
    run_neighborhood(json, "alu", 32);
    run_neighborhood(json, "div", 8);
  }
  json.write();
  return g_determinism_ok ? 0 : 1;
}
